"""Adaptive-execution sweeps: mode transitions over a draining battery.

The paper's running example (Listing 1) snapshots its Agent on *every
iteration* of the crawl loop, so the boot mode tracks the battery as it
drains.  This module runs that pattern against a benchmark workload and
records the mode trajectory — the adaptive behaviour the paper's
abstractions exist to enable, and a useful harness for studying how
QoS degrades across a whole discharge cycle.

One drain run is inherently sequential (each iteration depends on the
battery state the previous one left behind), but a *sweep* of runs
across benchmarks and systems is embarrassingly parallel:
:func:`drain_sweep` enumerates the runs as picklable task descriptors
and fans them out through :mod:`repro.eval.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.eval.parallel import EpisodeTask, run_episodes
from repro.obs.tracer import NULL_TRACER
from repro.platform.systems import make_platform
from repro.runtime.embedded import EntRuntime
from repro.workloads.base import ES, Workload, battery_boot_mode, mode_leq
from repro.workloads.registry import get_workload

__all__ = ["DrainStep", "DrainRun", "battery_drain_run", "drain_sweep"]


@dataclass
class DrainStep:
    """One iteration of the adaptive loop."""

    index: int
    battery_before: float
    boot_mode: str
    qos_mode: str
    energy_j: float
    duration_s: float


@dataclass
class DrainRun:
    benchmark: str
    system: str
    steps: List[DrainStep] = field(default_factory=list)

    @property
    def mode_trajectory(self) -> List[str]:
        return [step.boot_mode for step in self.steps]

    @property
    def transitions(self) -> List[int]:
        """Step indices where the boot mode changed."""
        out = []
        for i in range(1, len(self.steps)):
            if self.steps[i].boot_mode != self.steps[i - 1].boot_mode:
                out.append(i)
        return out

    def monotone_downward(self) -> bool:
        """A draining battery must never *raise* the boot mode.

        Compared in the declared battery lattice (``mode_leq``), not a
        hard-coded rank table, so the check tracks the ``modes {}``
        declaration the runtime enforces.
        """
        modes = self.mode_trajectory
        return all(mode_leq(later, earlier)
                   for earlier, later in zip(modes, modes[1:]))

    @property
    def total_energy_j(self) -> float:
        return sum(step.energy_j for step in self.steps)


def battery_drain_run(benchmark: str = "jspider", system: str = "A",
                      iterations: int = 40,
                      battery_scale: float = 1.0,
                      start_fraction: float = 1.0,
                      workload_mode: str = ES,
                      seed: int = 0,
                      tracer=None, profiler=None) -> DrainRun:
    """Run an adaptive loop over a draining battery.

    Each iteration re-snapshots the Agent (its attributor reads the
    live battery level), eliminates the QoS mode case on the boot mode,
    and processes one unit of the workload at that QoS.
    ``battery_scale`` shrinks the battery so a full discharge fits in
    ``iterations`` (1.0 = the platform's real capacity).
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    workload: Workload = get_workload(benchmark)
    platform = make_platform(system, seed=seed,
                             battery_fraction=start_fraction)
    if battery_scale != 1.0:
        platform.battery.capacity_joules *= battery_scale
        platform.battery.set_fraction(start_fraction)
    rt = EntRuntime.standard(platform, tracer=tracer, profiler=profiler)

    @rt.dynamic
    class Agent:
        def attributor(self):
            return battery_boot_mode(rt.ext.battery())

    qos_case = rt.mcase({"energy_saver": "energy_saver",
                         "managed": "managed",
                         "full_throttle": "full_throttle"})
    run = DrainRun(benchmark=benchmark, system=system)
    size = workload.task_size(workload_mode)
    scale = getattr(workload, "system_scale", None)
    if scale is not None:
        size *= scale(system)
    with tracer.span(f"drain:{benchmark}", category="episode",
                     system=system, iterations=iterations):
        for index in range(iterations):
            battery_before = platform.battery_fraction()
            if platform.battery.empty:
                break
            # Listing 1's pattern: re-snapshot the agent each iteration
            # (eager copies after the first — the lazy-copy metadata
            # keeps this cheap).
            agent = rt.snapshot(Agent())
            qos_mode = qos_case.for_object(agent)
            meter = platform.meter()
            meter.begin()
            start = platform.now()
            with rt.booted(agent):
                workload.execute(platform, size,
                                 workload.qos_value(qos_mode),
                                 seed=seed + index)
            run.steps.append(DrainStep(
                index=index, battery_before=battery_before,
                boot_mode=rt.mode_of(agent).name, qos_mode=qos_mode,
                energy_j=meter.end(),
                duration_s=platform.now() - start))
    return run


def drain_sweep(benchmarks: Iterable[str],
                systems: Sequence[str] = ("A",),
                iterations: int = 40,
                battery_scale: float = 1.0,
                start_fraction: float = 1.0,
                workload_mode: str = ES,
                seed: int = 0,
                jobs: Optional[int] = None,
                tracer=None, profiler=None) -> List[DrainRun]:
    """Run one drain per (benchmark, system), fanned out over ``jobs``.

    Returns the runs in (benchmark, system) enumeration order —
    independent of worker completion order, and bit-identical to
    calling :func:`battery_drain_run` serially with the same
    arguments.
    """
    keys: List[Tuple[str, str]] = [(name, system)
                                   for name in benchmarks
                                   for system in systems]
    tasks = [EpisodeTask(
        kind="drain", key=key, benchmark=key[0],
        params=dict(system=key[1], iterations=iterations,
                    battery_scale=battery_scale,
                    start_fraction=start_fraction,
                    workload_mode=workload_mode, seed=seed))
        for key in keys]
    results = run_episodes(tasks, jobs=jobs, tracer=tracer,
                           profiler=profiler)
    return [results[key] for key in keys]
