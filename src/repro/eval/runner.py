"""Experiment episode runners: the ENT programs behind E1/E2/E3.

Each episode assembles the paper's program structure out of embedded-ENT
classes:

* **E1 (battery-exception)** — a dynamic ``Agent`` whose attributor reads
  the battery picks the boot mode; the input is wrapped in a dynamic
  ``Task`` whose attributor classifies its size (Figure 7's workload
  attribution); the bounded snapshot ``snapshot task [_, agent-mode]``
  throws ``EnergyException`` when the workload mode exceeds the boot
  mode, and the handler falls back to a *statically* ``energy_saver``
  processor (allowed by the waterfall: es <= boot) running the Figure 7
  energy_saver QoS.  The "silent" variant suppresses the exception,
  modelling the absence of ENT's runtime (Figure 8/9's lighter bars).

* **E2 (battery-casing)** — the boot mode eliminates a mode case that
  selects the QoS knob; the large workload is processed at that QoS
  (Figure 10).

* **E3 (temperature-casing)** — between units of work, a dynamic
  ``Sleeper`` attributed by CPU temperature is snapshotted and its
  mode-cased interval slept, duty-cycling the CPU around the thermal
  thresholds (Figure 11); the plain-Java variant never sleeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import EnergyException
from repro.eval.parallel import EpisodeTask, run_episodes
from repro.lang.engines import resolve_engine
from repro.obs.tracer import NULL_TRACER
from repro.platform.systems import Platform, make_platform
from repro.runtime.embedded import EntRuntime
from repro.workloads.base import (BOOT_BATTERY_LEVELS, E3_SLEEP_MS, ES, FT,
                                  MG, TaskResult, Workload,
                                  battery_boot_mode, mode_leq,
                                  temperature_boot_mode)

__all__ = ["EpisodeResult", "TraceResult", "run_e1_episode",
           "run_e2_episode", "run_e3_episode", "repeated_energies"]


@dataclass
class EpisodeResult:
    benchmark: str
    system: str
    boot_mode: str
    workload_mode: str
    qos_mode: str
    silent: bool
    energy_j: float
    duration_s: float
    exception_raised: bool
    task: Optional[TaskResult] = None
    #: ``repro.lang`` engine requested for the episode, or ``None`` —
    #: episodes execute through the embedded API (native Python), so
    #: the value is validated provenance, not a different semantics.
    engine: Optional[str] = None

    @property
    def violating(self) -> bool:
        """Did this combo violate the waterfall (workload ≰ boot)?

        Derived from the declared battery lattice (not a hard-coded
        rank table), so classification cannot drift from the
        ``modes {}`` declaration the runtime itself checks against.
        """
        return not mode_leq(self.workload_mode, self.boot_mode)


@dataclass
class TraceResult:
    benchmark: str
    variant: str  # "ent" or "java"
    #: (normalized time 0..1, temperature C) samples.
    trace: List[Tuple[float, float]] = field(default_factory=list)
    energy_j: float = 0.0
    duration_s: float = 0.0
    sleeps: int = 0
    #: See :attr:`EpisodeResult.engine`.
    engine: Optional[str] = None


def _scaled_size(workload: Workload, workload_mode: str,
                 system: str) -> float:
    scale = getattr(workload, "system_scale", None)
    factor = scale(system) if scale is not None else 1.0
    return workload.task_size(workload_mode) * factor


def _build_app(workload: Workload, rt: EntRuntime, system: str):
    """The E1/E2 program skeleton: Agent + Task + degraded processor."""

    @rt.dynamic
    class Agent:
        """The entry object; its attributor reads the battery."""

        def attributor(self):
            return battery_boot_mode(rt.ext.battery())

        def run(self, task, qos_mode: str) -> TaskResult:
            return task.process(qos_mode)

    @rt.dynamic
    class Task:
        """Wraps one input; attributed by the Figure 7 size thresholds."""

        def __init__(self, workload_mode: str) -> None:
            self.logical_size = workload.task_size(workload_mode)
            self.scaled_size = _scaled_size(workload, workload_mode,
                                            system)

        def attributor(self):
            return workload.attribute(self.logical_size)

        def process(self, qos_mode: str) -> TaskResult:
            return workload.execute(rt.platform, self.scaled_size,
                                    workload.qos_value(qos_mode))

    @rt.static(ES)
    class DegradedProcessor:
        """The recovery path: statically energy_saver, so the waterfall
        admits it under any boot mode; runs the es QoS knob."""

        def process(self, scaled_size: float) -> TaskResult:
            return workload.execute(rt.platform, scaled_size,
                                    workload.qos_value(ES))

    return Agent, Task, DegradedProcessor


def run_e1_episode(workload: Workload, system: str, boot_mode: str,
                   workload_mode: str, silent: bool = False,
                   seed: int = 0, tracer=None, profiler=None,
                   engine: Optional[str] = None) -> EpisodeResult:
    """One battery-exception run (one bar of Figure 8).

    ``engine`` is validated against the ``repro.lang`` engine registry
    and recorded on the result and the episode's trace span; the
    episode itself runs through the embedded API regardless.
    """
    if engine is not None:
        engine = resolve_engine(engine)
    tracer = tracer if tracer is not None else NULL_TRACER
    platform = make_platform(
        system, seed=seed,
        battery_fraction=BOOT_BATTERY_LEVELS[boot_mode])
    rt = EntRuntime.standard(platform, silent=silent, tracer=tracer,
                             profiler=profiler)
    Agent, Task, DegradedProcessor = _build_app(workload, rt, system)
    meter = platform.meter()
    meter.begin()
    start = platform.now()
    exception_raised = False
    qos_mode = workload.default_qos_mode()
    task_result: Optional[TaskResult] = None
    span_meta = {"engine": engine} if engine is not None else {}
    with tracer.span(f"e1:{workload.name}", category="episode",
                     system=system, boot_mode=boot_mode,
                     workload_mode=workload_mode, silent=silent,
                     **span_meta):
        with tracer.span("snapshot-agent", category="phase"):
            agent = rt.snapshot(Agent())
        with rt.booted(agent):
            task = Task(workload_mode)
            try:
                with tracer.span("process", category="phase"):
                    snapped = rt.snapshot(task, upper=rt.mode_of(agent))
                    task_result = agent.run(snapped, qos_mode)
            except EnergyException:
                exception_raised = True
                qos_mode = ES
                with tracer.span("degraded", category="phase"):
                    degraded = DegradedProcessor()
                    task_result = degraded.process(task.scaled_size)
    return EpisodeResult(
        benchmark=workload.name, system=system, boot_mode=boot_mode,
        workload_mode=workload_mode, qos_mode=qos_mode, silent=silent,
        energy_j=meter.end(), duration_s=platform.now() - start,
        exception_raised=exception_raised, task=task_result,
        engine=engine)


def run_e2_episode(workload: Workload, system: str, boot_mode: str,
                   workload_mode: str = FT,
                   seed: int = 0, tracer=None, profiler=None,
                   engine: Optional[str] = None) -> EpisodeResult:
    """One battery-casing run (one bar of Figure 10): the boot mode
    eliminates a mode case selecting the QoS level.  ``engine`` as in
    :func:`run_e1_episode`."""
    if engine is not None:
        engine = resolve_engine(engine)
    tracer = tracer if tracer is not None else NULL_TRACER
    platform = make_platform(
        system, seed=seed,
        battery_fraction=BOOT_BATTERY_LEVELS[boot_mode])
    rt = EntRuntime.standard(platform, tracer=tracer, profiler=profiler)
    Agent, Task, _ = _build_app(workload, rt, system)
    # The QoS selector: a mode case eliminated on the agent's mode
    # (identity over mode names — each boot mode selects its QoS row).
    qos_case = rt.mcase({ES: ES, MG: MG, FT: FT})
    meter = platform.meter()
    meter.begin()
    start = platform.now()
    span_meta = {"engine": engine} if engine is not None else {}
    with tracer.span(f"e2:{workload.name}", category="episode",
                     system=system, boot_mode=boot_mode,
                     workload_mode=workload_mode, **span_meta):
        agent = rt.snapshot(Agent())
        qos_mode = qos_case.for_object(agent)
        with rt.booted(agent):
            size = _scaled_size(workload, workload_mode, system)
            with tracer.span("process", category="phase",
                             qos_mode=qos_mode):
                task_result = workload.execute(
                    platform, size, workload.qos_value(qos_mode))
    return EpisodeResult(
        benchmark=workload.name, system=system, boot_mode=boot_mode,
        workload_mode=workload_mode, qos_mode=qos_mode, silent=False,
        energy_j=meter.end(), duration_s=platform.now() - start,
        exception_raised=False, task=task_result, engine=engine)


def run_e3_episode(workload: Workload, variant: str = "ent",
                   seed: int = 0,
                   units: Optional[int] = None,
                   tracer=None,
                   profiler=None,
                   platform: Optional[Platform] = None,
                   engine: Optional[str] = None) -> TraceResult:
    """One temperature-casing run (one curve of Figure 11), System A.

    ``platform`` may be a pre-built (possibly pre-advanced) System-A
    platform — e.g. one that already ran warm-up work; the trace is
    normalized against the episode's own start time, not the
    simulation-clock zero.
    """
    if not workload.supports_temperature:
        raise ValueError(
            f"{workload.name} has no unit-of-work decomposition for E3")
    if variant not in ("ent", "java"):
        raise ValueError(f"unknown E3 variant {variant!r}")
    if engine is not None:
        engine = resolve_engine(engine)
    tracer = tracer if tracer is not None else NULL_TRACER
    if platform is None:
        platform = make_platform("A", seed=seed)
    rt = EntRuntime.thermal(platform, tracer=tracer, profiler=profiler)

    @rt.dynamic
    class Sleeper:
        """The dedicated Sleep object regulating CPU cool-down."""

        interval_ms = rt.mcase({name: ms for name, ms in E3_SLEEP_MS.items()})

        def attributor(self):
            return temperature_boot_mode(rt.ext.temperature())

    meter = platform.meter()
    meter.begin()
    start = platform.now()
    sleeper = Sleeper()
    sleeps = 0
    count = units if units is not None else workload.e3_units
    qos = workload.qos_value(FT)  # large dataset stresses the CPU
    span_meta = {"engine": engine} if engine is not None else {}
    with tracer.span(f"e3:{workload.name}", category="episode",
                     variant=variant, units=count, **span_meta):
        for index in range(count):
            with tracer.span("work-unit", category="phase", index=index):
                workload.execute_unit(platform, qos, seed=seed + index)
            if variant == "ent":
                snapped = rt.snapshot(sleeper)
                interval = snapped.interval_ms
                if interval > 0:
                    with tracer.span("cooldown", category="phase",
                                     interval_ms=interval):
                        platform.sleep(interval / 1000.0)
                    sleeps += 1
    duration = platform.now() - start
    if duration <= 0:
        duration = 1.0
    # Normalize against the episode's own window: the simulation clock
    # is not necessarily at 0 when the episode starts (warm-up work, a
    # reused platform), so both the offset and the filter are relative
    # to ``start``.
    trace = [((t - start) / duration, temp)
             for t, temp in platform.temperature_trace
             if start <= t <= start + duration]
    return TraceResult(benchmark=workload.name, variant=variant,
                       trace=trace, energy_j=meter.end(),
                       duration_s=duration, sleeps=sleeps,
                       engine=engine)


def repeated_energies(run, times: int = 10,
                      discard_first: bool = True,
                      jobs: Optional[int] = None) -> List[float]:
    """Run ``run(seed)`` repeatedly, returning the retained energies.

    Mirrors the paper's data collection: 11 runs with the first
    discarded (JIT warm-up) on Systems A/B, 10 runs on System C — the
    retained count is always ``times`` (one *extra* episode is run
    when discarding, so ``times=10, discard_first=True`` runs 11 and
    keeps 10).

    ``run`` is either a callable taking a seed (always executed
    serially) or an :class:`~repro.eval.parallel.EpisodeTask`
    template, whose per-seed copies fan out across ``jobs`` workers.
    """
    total = times + 1 if discard_first else times
    if isinstance(run, EpisodeTask):
        tasks = [run.with_seed(seed) for seed in range(total)]
        results = run_episodes(tasks, jobs=jobs)
        energies = [results[task.key].energy_j for task in tasks]
    else:
        energies = [run(seed).energy_j for seed in range(total)]
    return energies[1:] if discard_first else energies
