"""Experiment configuration: the single source of truth for Figure 7.

All per-benchmark settings live on the workload classes; this module
assembles them into the paper's tables and defines the experiment
grids.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import BATTERY_MODES, ES, FT, MG
from repro.workloads.registry import (ALL_WORKLOADS, E1_E2_BENCHMARKS,
                                      E3_BENCHMARKS)

#: The (boot, workload) combinations whose snapshots violate the
#: waterfall and throw EnergyException (section 6.2) — the three bars
#: of Figure 9, in the paper's order.
VIOLATING_COMBOS = [(MG, FT), (ES, MG), (ES, FT)]

#: All nine boot x workload combinations of Figure 8.
ALL_COMBOS = [(b, w) for w in BATTERY_MODES for b in BATTERY_MODES]


def figure7_rows() -> List[Dict[str, str]]:
    """Figure 7: benchmark settings (workload attribution + QoS)."""
    rows = []
    for workload in ALL_WORKLOADS:
        rows.append({
            "name": workload.name,
            "workload": workload.workload_kind,
            "workload_es": workload.workload_labels[ES],
            "workload_mg": workload.workload_labels[MG],
            "workload_ft": workload.workload_labels[FT],
            "qos": workload.qos_kind,
            "qos_es": workload.qos_labels[ES],
            "qos_mg": workload.qos_labels[MG],
            "qos_ft": workload.qos_labels[FT],
        })
    return rows


def figure6_static_rows() -> List[Dict[str, str]]:
    """Figure 6's static columns (descriptions and code sizes)."""
    return [w.describe() for w in ALL_WORKLOADS]


def e1_benchmarks(system: str) -> List[str]:
    return list(E1_E2_BENCHMARKS[system])


def e2_benchmarks(system: str) -> List[str]:
    return list(E1_E2_BENCHMARKS[system])


def e3_benchmarks() -> List[str]:
    return list(E3_BENCHMARKS)
