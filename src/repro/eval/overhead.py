"""Figure 6 — the per-benchmark overhead of ENT's runtime support.

The paper compares each ENT benchmark against a baseline build that
performs no runtime tagging and treats snapshot as a no-op, reporting
the percentage energy overhead: within a few percent, frequently
negative because run-to-run variance dominates the tiny mechanism cost.

Measuring a sub-percent delta by differencing two noisy end-to-end
wall-clock runs is hopeless on a shared machine (the paper's negative
entries show their testbed had the same problem), so the harness
decomposes the measurement into parts that are each individually
stable:

1. the *mechanism cost* — the per-operation price of snapshot
   (attributor dispatch + bound check + tag/copy), of a waterfall-
   checked message, and of a mode-case elimination — measured by long
   (>= 0.25 s) tight loops against the baseline runtime, which average
   over scheduler and DVFS noise;
2. the *mechanism counts* — how many of each operation one episode of
   the benchmark performs, read off the runtime's statistics counters;
3. the *kernel time* — the episode's baseline wall-clock, measured as
   one long block of repeated episodes.

``overhead = sum(count_i * cost_i) / kernel_time`` — the same quantity
the paper's ENT-vs-baseline quotient estimates, without the
differencing noise.  End-to-end paired timings remain available via
:func:`paired_end_to_end` for comparison.
"""

from __future__ import annotations

import gc
import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.platform.systems import make_platform
from repro.runtime.embedded import EntRuntime, RuntimeStats
from repro.workloads.base import ES, MG, Workload
from repro.workloads.registry import ALL_WORKLOADS, get_workload

__all__ = ["MechanismCosts", "OverheadRow", "figure6",
           "measure_mechanism_costs", "measure_overhead",
           "paired_end_to_end"]


@dataclass
class MechanismCosts:
    """Per-operation cost (seconds) of the runtime mechanisms."""

    snapshot_s: float
    message_s: float
    elim_s: float


@dataclass
class OverheadRow:
    benchmark: str
    description: str
    systems: str
    cloc: int
    ent_changes: int
    #: Baseline episode wall-clock (seconds).
    baseline_seconds: float
    #: Mechanism invocations in one episode.
    counts: Dict[str, int] = field(default_factory=dict)
    #: Estimated mechanism seconds added by the full runtime.
    mechanism_seconds: float = 0.0

    @property
    def overhead_percent(self) -> float:
        if self.baseline_seconds <= 0:
            return 0.0
        return 100.0 * self.mechanism_seconds / self.baseline_seconds


def _timed_loop(fn, min_seconds: float = 0.25,
                probe_iters: int = 64) -> float:
    """Per-call seconds of ``fn``, from one long timed block."""
    start = time.perf_counter()
    for _ in range(probe_iters):
        fn()
    probe = max(1e-9, time.perf_counter() - start)
    iterations = max(probe_iters, int(probe_iters * min_seconds / probe))
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations


_COST_CACHE: Optional[MechanismCosts] = None


def measure_mechanism_costs(refresh: bool = False) -> MechanismCosts:
    """Microbenchmark the three runtime mechanisms (cached)."""
    global _COST_CACHE
    if _COST_CACHE is not None and not refresh:
        return _COST_CACHE
    full = EntRuntime.standard()
    base = EntRuntime.standard(baseline=True)

    def build(rt):
        @rt.dynamic
        class Probe:
            level = rt.mcase({"energy_saver": 1, "managed": 2,
                              "full_throttle": 3})

            def __init__(self) -> None:
                self.n = 42

            def attributor(self):
                return "managed"

            def touch(self):
                return self.n

        return Probe

    FullProbe, BaseProbe = build(full), build(base)
    full_obj = full.snapshot(FullProbe())
    base_obj = base.snapshot(BaseProbe())

    was_enabled = gc.isenabled()
    gc.disable()
    try:
        # Snapshot: full machinery vs the baseline tag-only path.
        t_snap_full = _timed_loop(lambda: full.snapshot(full_obj))
        t_snap_base = _timed_loop(lambda: base.snapshot(base_obj))
        # Message: wrapped call with dfall check vs baseline wrapper.
        with full.booted("full_throttle"):
            t_msg_full = _timed_loop(full_obj.touch)
        t_msg_base = _timed_loop(base_obj.touch)
        # Mode-case elimination via the descriptor.
        t_elim_full = _timed_loop(lambda: full_obj.level)
        t_elim_base = _timed_loop(lambda: base_obj.level)
    finally:
        if was_enabled:
            gc.enable()
    _COST_CACHE = MechanismCosts(
        snapshot_s=max(0.0, t_snap_full - t_snap_base),
        message_s=max(0.0, t_msg_full - t_msg_base),
        elim_s=max(0.0, t_elim_full - t_elim_base))
    return _COST_CACHE


def _build_episode(workload: Workload, system: str, baseline: bool,
                   seed: int):
    """One E1-style episode closure; returns (run, runtime)."""
    platform = make_platform(system, seed=seed, battery_fraction=0.9)
    rt = EntRuntime.standard(platform, baseline=baseline)

    @rt.dynamic
    class Task:
        def __init__(self) -> None:
            self.size = workload.task_size(ES)

        def attributor(self):
            return workload.attribute(self.size)

        def process(self):
            return workload.execute(rt.platform, self.size,
                                    workload.qos_value(MG))

    def run():
        task = rt.snapshot(Task())
        with rt.booted("full_throttle"):
            return task.process()

    return run, rt


def _episode_counts(workload: Workload, system: str,
                    seed: int) -> Dict[str, int]:
    run, rt = _build_episode(workload, system, baseline=False, seed=seed)
    run()
    stats: RuntimeStats = rt.stats
    return {
        "snapshots": stats.snapshots,
        "messages": stats.messages,
        "elims": stats.mcase_elims,
    }


def measure_overhead(name: str, system: Optional[str] = None,
                     repeats: int = 5, seed: int = 0) -> OverheadRow:
    """One Figure 6 row: static columns + estimated runtime overhead.

    ``repeats`` scales the kernel-time measurement block.
    """
    workload = get_workload(name)
    target = system if system is not None else workload.systems[0]
    costs = measure_mechanism_costs()
    counts = _episode_counts(workload, target, seed)

    run, _ = _build_episode(workload, target, baseline=True, seed=seed)
    run()  # warm-up
    block = max(3, repeats)
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        for index in range(block):
            run_i, _ = _build_episode(workload, target, baseline=True,
                                      seed=seed + index)
            run_i()
        kernel_seconds = (time.perf_counter() - start) / block
    finally:
        if was_enabled:
            gc.enable()
    mechanism = (counts["snapshots"] * costs.snapshot_s
                 + counts["messages"] * costs.message_s
                 + counts["elims"] * costs.elim_s)
    return OverheadRow(
        benchmark=workload.name, description=workload.description,
        systems=",".join(workload.systems), cloc=workload.cloc,
        ent_changes=workload.ent_changes,
        baseline_seconds=kernel_seconds, counts=counts,
        mechanism_seconds=mechanism)


def paired_end_to_end(name: str, system: Optional[str] = None,
                      pairs: int = 10,
                      seed: int = 0) -> Tuple[float, float]:
    """Raw paired ENT/baseline episode timings (median seconds each).

    Kept for comparison with :func:`measure_overhead`; on a noisy
    machine the quotient of these two numbers can swing by tens of
    percent, which is exactly why Figure 6's estimator decomposes the
    measurement instead.
    """
    ent_times: List[float] = []
    base_times: List[float] = []
    for run_index in range(pairs):
        for baseline in (False, True) if run_index % 2 == 0 \
                else (True, False):
            run, _ = _build_episode(get_workload(name),
                                    system or
                                    get_workload(name).systems[0],
                                    baseline, seed + run_index)
            start = time.perf_counter()
            run()
            elapsed = time.perf_counter() - start
            (base_times if baseline else ent_times).append(elapsed)
    return statistics.median(ent_times), statistics.median(base_times)


def figure6(repeats: int = 5, seed: int = 0,
            benchmarks: Optional[List[str]] = None) -> List[OverheadRow]:
    names = benchmarks if benchmarks is not None else [
        w.name for w in ALL_WORKLOADS]
    return [measure_overhead(name, repeats=repeats, seed=seed)
            for name in names]
