"""Process-pool episode executor: fan out E1/E2/E3 grids across cores.

The evaluation's hot path is hundreds of independent simulated episodes
(every bar of Figures 8-11 and every run of a drain sweep constructs
its own :class:`~repro.platform.systems.Platform` and
:class:`~repro.runtime.embedded.EntRuntime`), so the grids are
embarrassingly parallel.  This module makes that parallelism available
without giving up the serial harness's two guarantees:

* **Determinism** — every episode is described by a picklable
  :class:`EpisodeTask` carrying its own seed; the worker rebuilds the
  workload from the registry and runs exactly the code the serial path
  runs.  Results are keyed by ``task.key`` and reassembled in the
  caller's enumeration order, so aggregation is independent of worker
  completion order and ``jobs=N`` output is bit-identical to serial.
* **Observability** — each worker records into its own bounded
  :class:`~repro.obs.tracer.Tracer` ring; the parent merges the
  per-worker rings into its own tracer in task-submission order (each
  episode's clock starts at its platform's zero, exactly as in a serial
  run that rebinds the tracer per episode), so ``repro obs report``
  works unchanged under fan-out.

``jobs`` semantics everywhere in this package: ``None`` or ``1`` means
serial in-process execution (the default — no pool, no pickling),
``0`` means one worker per core, ``N > 1`` means a pool of ``N``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.prof import NULL_PROFILER, Profiler
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.workloads.registry import get_workload

__all__ = ["EpisodeTask", "run_episodes", "resolve_jobs", "TASK_KINDS"]

#: Episode kinds the executor knows how to run.
TASK_KINDS = ("e1", "e2", "e3", "drain")


@dataclass
class EpisodeTask:
    """A picklable description of one episode.

    ``key`` is the caller's aggregation key (any hashable tuple; must
    be unique within one :func:`run_episodes` call), ``benchmark`` the
    registry name of the workload, and ``params`` the keyword arguments
    of the episode runner (``seed`` included — seeding is explicit so
    fan-out cannot perturb it).
    """

    kind: str
    key: Tuple
    benchmark: str
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in TASK_KINDS:
            raise ValueError(f"unknown episode kind {self.kind!r} "
                             f"(expected one of {TASK_KINDS})")

    def with_seed(self, seed: int) -> "EpisodeTask":
        """A copy of this task pinned to ``seed`` (key extended too)."""
        params = dict(self.params)
        params["seed"] = seed
        return EpisodeTask(kind=self.kind, key=tuple(self.key) + (seed,),
                           benchmark=self.benchmark, params=params)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker count for a ``--jobs`` value (None/1 serial, 0 = cores)."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _run_one(task: EpisodeTask, tracer, profiler=NULL_PROFILER) -> object:
    """Run one task in-process (the serial path and the worker body)."""
    # Imported lazily: repro.eval.runner/sweeps import nothing from this
    # module at top level, but keeping the edge one-directional at import
    # time avoids package-init cycles.
    from repro.eval import runner, sweeps

    if task.kind == "drain":
        return sweeps.battery_drain_run(task.benchmark, tracer=tracer,
                                        profiler=profiler, **task.params)
    workload = get_workload(task.benchmark)
    if task.kind == "e1":
        return runner.run_e1_episode(workload, tracer=tracer,
                                     profiler=profiler, **task.params)
    if task.kind == "e2":
        return runner.run_e2_episode(workload, tracer=tracer,
                                     profiler=profiler, **task.params)
    return runner.run_e3_episode(workload, tracer=tracer,
                                 profiler=profiler, **task.params)


def _pool_worker(task: EpisodeTask, trace_capacity: Optional[int],
                 profile: bool = False) -> Tuple:
    """Worker entry point: run the task, return
    ``(key, result, events, dropped, profile)``.

    Must stay module-level so the pool can pickle it.  The worker's
    tracer ring travels back as a plain event list (events carry only
    JSON-serializable fields, so they pickle cheaply); its profile is a
    :class:`~repro.obs.prof.Profile` of plain dicts, which the parent
    folds in with :meth:`~repro.obs.prof.Profile.merge`.
    """
    profiler = Profiler("embedded") if profile else NULL_PROFILER
    if trace_capacity is not None:
        tracer = Tracer(capacity=trace_capacity)
        result = _run_one(task, tracer, profiler)
        events, dropped = tracer.events(), tracer.dropped
    else:
        result = _run_one(task, NULL_TRACER, profiler)
        events, dropped = [], 0
    if profile:
        profiler.finish()
        return task.key, result, events, dropped, profiler.profile
    return task.key, result, events, dropped, None


def run_episodes(tasks: Iterable[EpisodeTask],
                 jobs: Optional[int] = None,
                 tracer=None,
                 profiler=None,
                 trace_capacity: int = 65536) -> Dict[Tuple, object]:
    """Run every task, returning ``{task.key: result}``.

    Serial (``jobs`` None/1) runs tasks in submission order in-process,
    sharing ``tracer`` and ``profiler`` directly.  Parallel submits
    them to a process pool and reassembles results *by key in
    submission order*, merging each worker's tracer ring into
    ``tracer`` at the same point the serial run would have emitted it —
    so both the result mapping and the merged event stream are
    identical to the serial run's.  Worker check/call counts are folded
    into ``profiler`` the same way; profile merging is commutative
    keyed aggregation, so the totals are independent of both worker
    scheduling and merge order.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    profiler = profiler if profiler is not None else NULL_PROFILER
    tasks = list(tasks)
    if not tasks:
        # Empty batch: return the empty aggregate up front.  This must
        # never fall through to the pool path — ``min(workers, 0)``
        # would ask ProcessPoolExecutor for max_workers=0, a ValueError.
        return {}
    keys = [task.key for task in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError("duplicate EpisodeTask keys in one batch")
    workers = resolve_jobs(jobs)
    if workers <= 1 or len(tasks) <= 1:
        return {task.key: _run_one(task, tracer, profiler)
                for task in tasks}
    capacity = trace_capacity if tracer.enabled else None
    collected: Dict[Tuple, Tuple[object, List, int, object]] = {}
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        futures = [pool.submit(_pool_worker, task, capacity,
                               profiler.enabled)
                   for task in tasks]
        for future in as_completed(futures):
            key, result, events, dropped, profile = future.result()
            collected[key] = (result, events, dropped, profile)
    results: Dict[Tuple, object] = {}
    for task in tasks:
        result, events, dropped, profile = collected[task.key]
        results[task.key] = result
        if tracer.enabled:
            for event in events:
                tracer.emit(event)
            tracer.dropped += dropped
        if profile is not None and profiler.enabled:
            profiler.profile.merge(profile)
    return results
