"""Regenerate the paper's tables and figures from the command line.

Usage::

    python -m repro.eval figure9                 # print one figure
    python -m repro.eval figure8 --jobs 0        # fan out across cores
    python -m repro.eval all                     # print everything
    python -m repro.eval export --dir results    # write JSON data
    python -m repro.eval drain --benchmark jspider crypto --jobs 2
    python -m repro.eval episode --experiment e3 --benchmark sunflow \\
        --trace /tmp/e3.jsonl            # traced single episode

Figures print in the same text form the benchmark harness writes to
``results/figure*.txt``.  ``--jobs N`` fans the episode grid out over a
process pool (``0`` = one worker per core; results are bit-identical
to serial — see :mod:`repro.eval.parallel`).  ``episode`` runs one
E1/E2/E3 episode with a tracer attached and writes the event trace
(analyse it with ``python -m repro obs report``); the figure commands
accept ``--trace`` too, with per-worker rings merged into one stream.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.eval",
        description="Regenerate the ENT paper's evaluation "
                    "(Figures 6-11)")
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("figure6", "figure7", "figure8", "figure9", "figure10",
                 "figure11", "all"):
        cmd = sub.add_parser(name, help=f"regenerate {name}")
        cmd.add_argument("--seed", type=int, default=0)
        cmd.add_argument("--jobs", type=int, default=None,
                         help="parallel episode workers (default: "
                              "serial, 0 = all cores)")
        cmd.add_argument("--trace", metavar="PATH", default=None,
                         help="record the (merged) episode trace")
        cmd.add_argument("--trace-format", choices=["jsonl", "chrome"],
                         default="jsonl")
        cmd.add_argument("--trace-capacity", type=int, default=262144)
        if name in ("figure8", "figure11"):
            cmd.add_argument("--benchmarks", nargs="*", default=None,
                             help="restrict to these benchmarks")

    export = sub.add_parser("export", help="write figure data as JSON")
    export.add_argument("--dir", default="results")
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("--figures", nargs="*", default=None)
    export.add_argument("--jobs", type=int, default=None,
                        help="parallel episode workers (default: "
                             "serial, 0 = all cores)")

    drain = sub.add_parser(
        "drain", help="adaptive run across a battery discharge")
    drain.add_argument("--benchmark", nargs="+", default=["jspider"],
                       help="benchmark(s); several run as a sweep")
    drain.add_argument("--system", default="A")
    drain.add_argument("--iterations", type=int, default=40)
    drain.add_argument("--battery-scale", type=float, default=0.003)
    drain.add_argument("--seed", type=int, default=0)
    drain.add_argument("--jobs", type=int, default=None,
                       help="parallel sweep workers (default: serial, "
                            "0 = all cores)")

    from repro.lang.engines import ENGINES

    advise = sub.add_parser(
        "advise",
        help="Pareto mode advisor over a battery episode grid "
             "(repro.advise; docs/ADVISE.md)")
    advise.add_argument("--file", default="examples/ent/crawler.ent",
                        help="ENT program to advise "
                             "(default examples/ent/crawler.ent)")
    advise.add_argument("--system", choices=["A", "B", "C"],
                        default="A")
    advise.add_argument("--batteries", type=float, nargs="+",
                        default=[1.0, 0.6, 0.3],
                        help="battery levels forming the episode "
                             "grid (default 1.0 0.6 0.3)")
    advise.add_argument("--arch",
                        choices=["sim45nm", "skylake", "cortex-a53"],
                        default="sim45nm")
    advise.add_argument("--engine", default=None,
                        choices=list(ENGINES))
    advise.add_argument("--runs", type=int, default=2,
                        help="calibration runs per battery level")
    advise.add_argument("--samples", type=int, default=128,
                        help="Monte-Carlo draws per pinned class")
    advise.add_argument("--seed", type=int, default=0)
    advise.add_argument("--jobs", type=int, default=None,
                        help="parallel calibration workers (default: "
                             "serial, 0 = all cores; results are "
                             "bit-identical for any value)")
    advise.add_argument("--json", action="store_true",
                        help="emit the full result as one JSON object")

    episode = sub.add_parser(
        "episode", help="run one traced E1/E2/E3 episode")
    episode.add_argument("--experiment", choices=["e1", "e2", "e3"],
                         required=True)
    episode.add_argument("--benchmark", default=None,
                         help="workload name (default: jspider for "
                              "e1/e2, sunflow for e3)")
    episode.add_argument("--system", choices=["A", "B", "C"], default="A",
                         help="platform (e1/e2; e3 always runs on A)")
    episode.add_argument("--boot", default="full_throttle",
                         help="boot mode (e1/e2)")
    episode.add_argument("--workload-mode", default="full_throttle",
                         help="workload attribution mode (e1/e2)")
    episode.add_argument("--variant", choices=["ent", "java"],
                         default="ent", help="e3 variant")
    episode.add_argument("--units", type=int, default=None,
                         help="e3 work units (default: benchmark's)")
    episode.add_argument("--silent", action="store_true",
                         help="e1 silent build")
    from repro.lang.engines import ENGINES
    episode.add_argument("--engine", default=None,
                         choices=list(ENGINES),
                         help="repro.lang engine to record for the "
                              "episode (the engine registry: walk, "
                              "compiled, vm or jit); episodes run "
                              "through the embedded API, so this is "
                              "validated provenance")
    episode.add_argument("--seed", type=int, default=0)
    episode.add_argument("--trace", metavar="PATH", required=True,
                         help="write the episode trace to PATH")
    episode.add_argument("--trace-format", choices=["jsonl", "chrome"],
                         default="jsonl")
    episode.add_argument("--trace-capacity", type=int, default=65536)

    return parser


def _run_advise(args) -> int:
    """Advise over a battery episode grid (``repro.eval advise``).

    The grid plays the role of the drain sweep's episodes: each
    candidate assignment is calibrated at every battery level, so the
    frontier reflects the program's behaviour across the discharge,
    not a single lucky episode.  Output is bit-identical for any
    ``--jobs`` value.
    """
    from repro.advise import AdviseConfig, advise_file, builtin_model
    from repro.lang.engines import resolve_engine

    config = AdviseConfig(
        arch=args.arch,
        engine=resolve_engine(args.engine),
        system=args.system,
        seed=args.seed,
        runs=args.runs,
        samples=args.samples,
        batteries=tuple(args.batteries),
        jobs=args.jobs if args.jobs is not None else 1)
    result = advise_file(args.file, config=config,
                         model=builtin_model(args.arch))
    if args.json:
        print(result.to_json())
    else:
        print(result.render())
    return 0


def _run_episode(args) -> int:
    from repro.eval.runner import (run_e1_episode, run_e2_episode,
                                   run_e3_episode)
    from repro.obs.export import write_trace
    from repro.obs.tracer import Tracer
    from repro.workloads import get_workload

    default_bench = "sunflow" if args.experiment == "e3" else "jspider"
    workload = get_workload(args.benchmark or default_bench)
    tracer = Tracer(capacity=args.trace_capacity)
    if args.experiment == "e1":
        result = run_e1_episode(workload, args.system, args.boot,
                                args.workload_mode, silent=args.silent,
                                seed=args.seed, tracer=tracer,
                                engine=args.engine)
        summary = (f"e1 {result.benchmark} system={result.system} "
                   f"boot={result.boot_mode} "
                   f"workload={result.workload_mode} "
                   f"qos={result.qos_mode} "
                   f"exception={result.exception_raised} "
                   f"E={result.energy_j:.2f}J "
                   f"t={result.duration_s:.3f}s")
    elif args.experiment == "e2":
        result = run_e2_episode(workload, args.system, args.boot,
                                args.workload_mode, seed=args.seed,
                                tracer=tracer, engine=args.engine)
        summary = (f"e2 {result.benchmark} system={result.system} "
                   f"boot={result.boot_mode} qos={result.qos_mode} "
                   f"E={result.energy_j:.2f}J "
                   f"t={result.duration_s:.3f}s")
    else:
        result = run_e3_episode(workload, variant=args.variant,
                                seed=args.seed, units=args.units,
                                tracer=tracer, engine=args.engine)
        summary = (f"e3 {result.benchmark} variant={result.variant} "
                   f"sleeps={result.sleeps} "
                   f"E={result.energy_j:.2f}J "
                   f"t={result.duration_s:.3f}s")
    count = write_trace(tracer.events(), args.trace,
                        fmt=args.trace_format)
    print(summary)
    print(f"trace: {count} events -> {args.trace} "
          f"({args.trace_format}, {tracer.dropped} dropped)")
    return 0


def _print_figure(name: str, seed: int, jobs=None, tracer=None,
                  benchmarks=None) -> None:
    from repro.eval import (figure6, figure8, figure9, figure10,
                            figure11, format_figure6, format_figure7,
                            format_figure8, format_figure9,
                            format_figure10, format_figure11)
    if name == "figure6":
        print(format_figure6(figure6(seed=seed)))
    elif name == "figure7":
        print(format_figure7())
    elif name == "figure8":
        print(format_figure8(figure8("A", seed=seed, jobs=jobs,
                                     tracer=tracer,
                                     benchmarks=benchmarks)))
    elif name == "figure9":
        print(format_figure9(figure9(seed=seed, jobs=jobs,
                                     tracer=tracer)))
    elif name == "figure10":
        print(format_figure10(figure10(seed=seed, jobs=jobs,
                                       tracer=tracer)))
    elif name == "figure11":
        print(format_figure11(figure11(seed=seed, jobs=jobs,
                                       tracer=tracer,
                                       benchmarks=benchmarks)))


def _figure_tracer(args):
    """A Tracer when ``--trace`` was given, else None (NULL)."""
    if getattr(args, "trace", None) is None:
        return None
    from repro.obs.tracer import Tracer
    return Tracer(capacity=args.trace_capacity)


def _write_figure_trace(args, tracer) -> None:
    if tracer is None:
        return
    from repro.obs.export import write_trace
    count = write_trace(tracer.events(), args.trace,
                        fmt=args.trace_format)
    print(f"[trace: {count} events -> {args.trace} "
          f"({args.trace_format}, {tracer.dropped} dropped)]",
          file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "all":
        tracer = _figure_tracer(args)
        for name in ("figure7", "figure6", "figure8", "figure9",
                     "figure10", "figure11"):
            _print_figure(name, args.seed, jobs=args.jobs, tracer=tracer)
            print()
        _write_figure_trace(args, tracer)
        return 0
    if args.command == "export":
        from repro.eval.export import export_all
        written = export_all(directory=args.dir, seed=args.seed,
                             figures=args.figures, jobs=args.jobs)
        for name, path in written.items():
            print(f"{name}: {path}")
        return 0
    if args.command == "drain":
        from repro.eval.sweeps import drain_sweep
        runs = drain_sweep(args.benchmark, systems=(args.system,),
                           iterations=args.iterations,
                           battery_scale=args.battery_scale,
                           seed=args.seed, jobs=args.jobs)
        for run in runs:
            print(f"{run.benchmark} on System {run.system}: "
                  f"{len(run.steps)} iterations")
            for step in run.steps:
                print(f"  {step.index:>3} "
                      f"battery={step.battery_before:.0%} "
                      f"mode={step.boot_mode:<14} "
                      f"qos={step.qos_mode:<14} "
                      f"E={step.energy_j:.1f}J")
            print(f"monotone downward: {run.monotone_downward()}")
        return 0
    if args.command == "advise":
        return _run_advise(args)
    if args.command == "episode":
        return _run_episode(args)
    tracer = _figure_tracer(args)
    _print_figure(args.command, args.seed, jobs=args.jobs, tracer=tracer,
                  benchmarks=getattr(args, "benchmarks", None))
    _write_figure_trace(args, tracer)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
