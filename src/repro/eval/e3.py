"""E3 — the temperature-casing experiment (Figure 11).

Five System-A benchmarks with a distinct unit of work run twice: once
in ENT (snapshotting a temperature-attributed Sleep object between
units, sleeping its mode-cased interval) and once as plain Java (no
sleeps).  The expected shape: ENT traces plateau near the ``hot``
threshold (sunflow near ``overheating``) while Java traces climb
towards the thermal steady state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.eval.config import e3_benchmarks
from repro.eval.parallel import EpisodeTask, run_episodes
from repro.eval.runner import TraceResult

__all__ = ["Figure11Pair", "figure11", "trace_stats"]

#: E3 thresholds (degrees C) from section 6.1.
HOT_THRESHOLD_C = 60.0
OVERHEAT_THRESHOLD_C = 65.0


@dataclass
class Figure11Pair:
    benchmark: str
    ent: TraceResult
    java: TraceResult


def figure11(seed: int = 0,
             benchmarks: Optional[List[str]] = None,
             units: Optional[int] = None,
             jobs: Optional[int] = None, tracer=None) -> List[Figure11Pair]:
    names = benchmarks if benchmarks is not None else e3_benchmarks()
    tasks = [EpisodeTask(
        kind="e3", key=(name, variant), benchmark=name,
        params=dict(variant=variant, seed=seed, units=units))
        for name in names for variant in ("ent", "java")]
    results = run_episodes(tasks, jobs=jobs, tracer=tracer)
    return [Figure11Pair(benchmark=name,
                         ent=results[(name, "ent")],
                         java=results[(name, "java")])
            for name in names]


def trace_stats(trace: TraceResult,
                tail_fraction: float = 0.5) -> Dict[str, float]:
    """Summary statistics of a temperature trace's steady tail."""
    tail = [temp for t, temp in trace.trace if t >= 1.0 - tail_fraction]
    if not tail:
        tail = [temp for _, temp in trace.trace] or [0.0]
    return {
        "tail_mean_c": sum(tail) / len(tail),
        "tail_max_c": max(tail),
        "peak_c": max(temp for _, temp in trace.trace),
        "final_c": trace.trace[-1][1] if trace.trace else 0.0,
    }
