"""Experiment harnesses reproducing every table and figure (Figs 6-11)."""

from repro.eval.config import (ALL_COMBOS, VIOLATING_COMBOS, e1_benchmarks,
                               e2_benchmarks, e3_benchmarks,
                               figure6_static_rows, figure7_rows)
from repro.eval.e1 import Figure8Row, Figure9Bar, figure8, figure9
from repro.eval.e2 import Figure10Row, figure10
from repro.eval.e3 import Figure11Pair, figure11, trace_stats
from repro.eval.overhead import OverheadRow, figure6, measure_overhead
from repro.eval.parallel import (EpisodeTask, resolve_jobs, run_episodes)
from repro.eval.report import (format_figure6, format_figure7,
                               format_figure8, format_figure9,
                               format_figure10, format_figure11,
                               render_table)
from repro.eval.runner import (EpisodeResult, TraceResult,
                               repeated_energies, run_e1_episode,
                               run_e2_episode, run_e3_episode)
from repro.eval.sweeps import (DrainRun, DrainStep, battery_drain_run,
                               drain_sweep)

__all__ = [
    "ALL_COMBOS",
    "DrainRun",
    "DrainStep",
    "EpisodeResult",
    "EpisodeTask",
    "battery_drain_run",
    "drain_sweep",
    "Figure10Row",
    "Figure11Pair",
    "Figure8Row",
    "Figure9Bar",
    "OverheadRow",
    "TraceResult",
    "VIOLATING_COMBOS",
    "e1_benchmarks",
    "e2_benchmarks",
    "e3_benchmarks",
    "figure10",
    "figure11",
    "figure6",
    "figure6_static_rows",
    "figure7_rows",
    "figure8",
    "figure9",
    "format_figure10",
    "format_figure11",
    "format_figure6",
    "format_figure7",
    "format_figure8",
    "format_figure9",
    "measure_overhead",
    "render_table",
    "repeated_energies",
    "resolve_jobs",
    "run_episodes",
    "run_e1_episode",
    "run_e2_episode",
    "run_e3_episode",
    "trace_stats",
]
