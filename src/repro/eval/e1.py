"""E1 — the battery-exception experiment (Figures 8 and 9).

Each benchmark runs under all nine boot-mode x workload-mode
combinations, twice: once under ENT (the ``EnergyException`` fires on
the three violating combos, scaling QoS down to energy_saver) and once
"silent" (the exception is ignored — "what could have been" without
the runtime type system).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.eval.config import ALL_COMBOS, VIOLATING_COMBOS, e1_benchmarks
from repro.eval.runner import EpisodeResult, run_e1_episode
from repro.workloads.base import BATTERY_MODES, FT
from repro.workloads.registry import get_workload

__all__ = ["Figure8Row", "Figure9Bar", "figure8", "figure9"]


@dataclass
class Figure8Row:
    """One benchmark's 18 bars: 9 combos x {ent, silent}."""

    benchmark: str
    #: (boot_mode, workload_mode, silent) -> episode.
    cells: Dict[Tuple[str, str, bool], EpisodeResult] = field(
        default_factory=dict)

    def energy(self, boot: str, workload: str, silent: bool) -> float:
        return self.cells[(boot, workload, silent)].energy_j

    def exception_thrown(self, boot: str, workload: str) -> bool:
        return self.cells[(boot, workload, False)].exception_raised


def figure8(system: str = "A", seed: int = 0,
            benchmarks: List[str] = None) -> List[Figure8Row]:
    """Run the full E1 grid for one system."""
    rows: List[Figure8Row] = []
    for name in benchmarks if benchmarks is not None \
            else e1_benchmarks(system):
        workload = get_workload(name)
        row = Figure8Row(benchmark=name)
        for boot, wl in ALL_COMBOS:
            for silent in (False, True):
                row.cells[(boot, wl, silent)] = run_e1_episode(
                    workload, system, boot, wl, silent=silent, seed=seed)
        rows.append(row)
    return rows


@dataclass
class Figure9Bar:
    """One violating combo: ENT vs silent, normalized energies."""

    benchmark: str
    system: str
    boot_mode: str
    workload_mode: str
    ent_energy_j: float
    silent_energy_j: float
    #: Both energies normalized against the silent full_throttle boot.
    ent_normalized: float
    silent_normalized: float

    @property
    def percent_saved(self) -> float:
        """The number printed on the Figure 9 bars."""
        if self.silent_energy_j <= 0:
            return 0.0
        return 100.0 * (1.0 - self.ent_energy_j / self.silent_energy_j)


def figure9(systems: Tuple[str, ...] = ("A", "B", "C"),
            seed: int = 0) -> List[Figure9Bar]:
    """The three violating combos per benchmark, all systems."""
    bars: List[Figure9Bar] = []
    for system in systems:
        for name in e1_benchmarks(system):
            workload = get_workload(name)
            episodes: Dict[Tuple[str, str, bool], EpisodeResult] = {}
            needed = set(VIOLATING_COMBOS) | {(FT, FT)}
            for boot, wl in needed:
                for silent in (False, True):
                    episodes[(boot, wl, silent)] = run_e1_episode(
                        workload, system, boot, wl, silent=silent,
                        seed=seed)
            baseline = episodes[(FT, FT, True)].energy_j
            for boot, wl in VIOLATING_COMBOS:
                ent = episodes[(boot, wl, False)]
                silent = episodes[(boot, wl, True)]
                bars.append(Figure9Bar(
                    benchmark=name, system=system, boot_mode=boot,
                    workload_mode=wl, ent_energy_j=ent.energy_j,
                    silent_energy_j=silent.energy_j,
                    ent_normalized=ent.energy_j / baseline,
                    silent_normalized=silent.energy_j / baseline))
    return bars
