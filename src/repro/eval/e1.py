"""E1 — the battery-exception experiment (Figures 8 and 9).

Each benchmark runs under all nine boot-mode x workload-mode
combinations, twice: once under ENT (the ``EnergyException`` fires on
the three violating combos, scaling QoS down to energy_saver) and once
"silent" (the exception is ignored — "what could have been" without
the runtime type system).

Both grids are enumerated as picklable :class:`EpisodeTask`
descriptors and submitted through :func:`repro.eval.parallel
.run_episodes`; with ``jobs`` > 1 the episodes fan out across a
process pool and the rows/bars are reassembled from keyed results,
bit-identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.eval.config import ALL_COMBOS, VIOLATING_COMBOS, e1_benchmarks
from repro.eval.parallel import EpisodeTask, run_episodes
from repro.eval.runner import EpisodeResult
from repro.workloads.base import FT

__all__ = ["Figure8Row", "Figure9Bar", "figure8", "figure9"]


@dataclass
class Figure8Row:
    """One benchmark's 18 bars: 9 combos x {ent, silent}."""

    benchmark: str
    #: (boot_mode, workload_mode, silent) -> episode.
    cells: Dict[Tuple[str, str, bool], EpisodeResult] = field(
        default_factory=dict)

    def energy(self, boot: str, workload: str, silent: bool) -> float:
        return self.cells[(boot, workload, silent)].energy_j

    def exception_thrown(self, boot: str, workload: str) -> bool:
        return self.cells[(boot, workload, False)].exception_raised


def _e1_task(name: str, system: str, boot: str, wl: str, silent: bool,
             seed: int) -> EpisodeTask:
    return EpisodeTask(
        kind="e1", key=(system, name, boot, wl, silent), benchmark=name,
        params=dict(system=system, boot_mode=boot, workload_mode=wl,
                    silent=silent, seed=seed))


def figure8(system: str = "A", seed: int = 0,
            benchmarks: List[str] = None,
            jobs: Optional[int] = None, tracer=None) -> List[Figure8Row]:
    """Run the full E1 grid for one system (``jobs`` workers)."""
    names = benchmarks if benchmarks is not None else e1_benchmarks(system)
    tasks = [_e1_task(name, system, boot, wl, silent, seed)
             for name in names
             for boot, wl in ALL_COMBOS
             for silent in (False, True)]
    results = run_episodes(tasks, jobs=jobs, tracer=tracer)
    rows: List[Figure8Row] = []
    for name in names:
        row = Figure8Row(benchmark=name)
        for boot, wl in ALL_COMBOS:
            for silent in (False, True):
                row.cells[(boot, wl, silent)] = results[
                    (system, name, boot, wl, silent)]
        rows.append(row)
    return rows


@dataclass
class Figure9Bar:
    """One violating combo: ENT vs silent, normalized energies."""

    benchmark: str
    system: str
    boot_mode: str
    workload_mode: str
    ent_energy_j: float
    silent_energy_j: float
    #: Both energies normalized against the silent full_throttle boot.
    ent_normalized: float
    silent_normalized: float

    @property
    def percent_saved(self) -> float:
        """The number printed on the Figure 9 bars."""
        if self.silent_energy_j <= 0:
            return 0.0
        return 100.0 * (1.0 - self.ent_energy_j / self.silent_energy_j)


def figure9(systems: Tuple[str, ...] = ("A", "B", "C"),
            seed: int = 0,
            jobs: Optional[int] = None, tracer=None) -> List[Figure9Bar]:
    """The three violating combos per benchmark, all systems."""
    needed = list(VIOLATING_COMBOS) + [(FT, FT)]
    tasks: List[EpisodeTask] = []
    for system in systems:
        for name in e1_benchmarks(system):
            for boot, wl in needed:
                for silent in (False, True):
                    tasks.append(_e1_task(name, system, boot, wl,
                                          silent, seed))
    results = run_episodes(tasks, jobs=jobs, tracer=tracer)
    bars: List[Figure9Bar] = []
    for system in systems:
        for name in e1_benchmarks(system):
            baseline = results[(system, name, FT, FT, True)].energy_j
            for boot, wl in VIOLATING_COMBOS:
                ent = results[(system, name, boot, wl, False)]
                silent = results[(system, name, boot, wl, True)]
                bars.append(Figure9Bar(
                    benchmark=name, system=system, boot_mode=boot,
                    workload_mode=wl, ent_energy_j=ent.energy_j,
                    silent_energy_j=silent.energy_j,
                    ent_normalized=ent.energy_j / baseline,
                    silent_normalized=silent.energy_j / baseline))
    return bars
