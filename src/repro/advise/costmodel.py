"""Per-architecture probabilistic energy cost tables.

A :class:`CostModel` maps *cost keys* — coarse operation families plus
the dynamic-check kinds — to per-execution energy **distributions** in
picojoules (mean + relative std, optionally an empirical histogram of
calibration samples).  Three built-in tables ship with the advisor:

* ``sim45nm`` — the simulated platform's nominal 45 nm-class budget
  (the default; matches the scale of ``repro.platform``'s ledger);
* ``skylake`` — desktop-class numbers in the spirit of the paper's
  System A/B host;
* ``cortex-a53`` — mobile-class numbers for the System C profile.

The numbers are *model priors*, not measurements: `repro advise
--calibrate-from profile.json` replaces them with empirical pJ/exec
samples computed from a ``repro profile --json --energy`` payload
(measured joules per label / execution counts), which is the paper's
"observe, then adapt" loop closed over the cost model itself.

Label resolution — how a profiler label finds its cost key::

    exact key match            "check.dfall", "native", ...
    op.<NAME>                  via the VM's OP_COST_KEYS families
    check.<kind>@<line>:<col>  -> "check.<kind>"
    label family               via repro.lang.engines.label_kind
    otherwise                  -> "default"

so every label any engine emits lands on a priced key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import EntError
from repro.lang.bytecode import OP_COST_KEYS, OP_NAMES
from repro.lang.engines import label_kind

from repro.advise.propagate import Uncertain

__all__ = ["CostEntry", "CostModel", "ARCHS", "DEFAULT_ARCH",
           "builtin_model", "PJ_TO_J"]

#: Picojoules to joules.
PJ_TO_J = 1e-12

#: ``op.<NAME>`` label -> cost-key family, derived from the VM's
#: per-opcode table so the two can never drift apart.
_OP_LABEL_KEYS: Dict[str, str] = {
    f"op.{OP_NAMES[op]}": key for op, key in OP_COST_KEYS.items()
}


@dataclass
class CostEntry:
    """One cost key's per-execution energy distribution (picojoules)."""

    mean_pj: float
    rel_std: float = 0.15
    samples: List[float] = field(default_factory=list)

    def distribution(self) -> Uncertain:
        if self.samples:
            base = Uncertain.from_samples(self.samples)
            if base.std > 0.0:
                return base
            # Degenerate empirical sample: keep the measured mean but
            # fall back to the prior's relative spread.
            std = abs(base.mean) * self.rel_std
            return Uncertain(base.mean, std * std, base.n)
        std = abs(self.mean_pj) * self.rel_std
        return Uncertain(self.mean_pj, std * std, 0)

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"mean_pj": self.mean_pj,
                                  "rel_std": self.rel_std}
        if self.samples:
            out["samples"] = list(self.samples)
        return out

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "CostEntry":
        return CostEntry(mean_pj=float(data["mean_pj"]),
                         rel_std=float(data.get("rel_std", 0.15)),
                         samples=[float(v)
                                  for v in data.get("samples", [])])


#: Cost keys every table must price.  ``check.*`` keys are the paper's
#: dynamic obligations; the rest are the engines' label families.
COST_KEYS = ("alu", "branch", "move", "field", "call", "native",
             "alloc", "control", "check.dfall", "check.snapshot_bound",
             "check.mcase_elim", "attributor", "node", "op", "default")


def _table(values: Dict[str, float], rel_std: float = 0.15
           ) -> Dict[str, CostEntry]:
    return {key: CostEntry(mean_pj=values[key], rel_std=rel_std)
            for key in COST_KEYS if key in values}


# Nominal per-execution costs in pJ.  Orders of magnitude follow the
# usual energy-per-op literature (simple ALU ops a few pJ at 45 nm,
# memory-touching ops 5-20x that, dispatch/dynamic checks dearer
# still); the mobile core is leaner per-op, the desktop core fatter.
_BUILTIN_TABLES: Dict[str, Dict[str, CostEntry]] = {
    "sim45nm": _table({
        "alu": 3.1, "branch": 4.6, "move": 2.2, "field": 11.0,
        "call": 24.0, "native": 95.0, "alloc": 58.0, "control": 1.8,
        "check.dfall": 31.0, "check.snapshot_bound": 26.0,
        "check.mcase_elim": 19.0, "attributor": 42.0, "node": 9.5,
        "op": 3.4, "default": 6.0,
    }),
    "skylake": _table({
        "alu": 24.0, "branch": 31.0, "move": 17.0, "field": 64.0,
        "call": 140.0, "native": 520.0, "alloc": 310.0, "control": 12.0,
        "check.dfall": 180.0, "check.snapshot_bound": 150.0,
        "check.mcase_elim": 110.0, "attributor": 240.0, "node": 55.0,
        "op": 21.0, "default": 35.0,
    }, rel_std=0.12),
    "cortex-a53": _table({
        "alu": 8.2, "branch": 11.0, "move": 6.1, "field": 27.0,
        "call": 61.0, "native": 230.0, "alloc": 130.0, "control": 4.9,
        "check.dfall": 74.0, "check.snapshot_bound": 63.0,
        "check.mcase_elim": 47.0, "attributor": 99.0, "node": 23.0,
        "op": 8.8, "default": 15.0,
    }, rel_std=0.2),
}

ARCHS = tuple(sorted(_BUILTIN_TABLES))
DEFAULT_ARCH = "sim45nm"


class CostModel:
    """An architecture's cost table plus the label-resolution chain."""

    def __init__(self, arch: str,
                 entries: Dict[str, CostEntry]) -> None:
        self.arch = arch
        self.entries = dict(entries)

    # -- resolution ----------------------------------------------------

    def resolve_key(self, label: str) -> str:
        """Map any profiler label (or cost key) to a priced key."""
        if label in self.entries:
            return label
        if label.startswith("op."):
            key = _OP_LABEL_KEYS.get(label)
            if key is not None and key in self.entries:
                return key
        if label.startswith("check."):
            # "check.<kind>@<line>:<col>" -> "check.<kind>"
            kind_key = label.split("@", 1)[0]
            if kind_key in self.entries:
                return kind_key
        family = label_kind(label)
        if family in self.entries:
            return family
        return "default"

    def cost(self, label: str) -> Uncertain:
        """Per-execution energy distribution for ``label``, in pJ."""
        return self.entries[self.resolve_key(label)].distribution()

    def cost_j(self, label: str, count: float) -> Uncertain:
        """Energy of ``count`` executions of ``label``, in joules."""
        return self.cost(label).times(count).scale(PJ_TO_J)

    def relative_std(self, label: str) -> float:
        dist = self.cost(label)
        return dist.std / abs(dist.mean) if dist.mean else 0.0

    # -- calibration ---------------------------------------------------

    def calibrate(self, profile_payload: Dict[str, object]) -> int:
        """Fold a ``repro profile --json --energy`` payload into the
        table: each label with measured joules and an execution count
        contributes one pJ/exec sample to its resolved key.  Returns
        the number of samples absorbed."""
        energy = profile_payload.get("energy_by_label") or {}
        profile = profile_payload.get("profile") or {}
        labels = profile.get("labels") or profile_payload.get("labels") \
            or {}
        absorbed = 0
        for label, joules in sorted(energy.items()):
            stats = labels.get(label) or {}
            count = int(stats.get("count", 0))
            if count <= 0 or not isinstance(joules, (int, float)):
                continue
            key = self.resolve_key(label)
            entry = self.entries[key]
            entry.samples.append(float(joules) / count / PJ_TO_J)
            absorbed += 1
        for entry in self.entries.values():
            if entry.samples:
                entry.mean_pj = sum(entry.samples) / len(entry.samples)
        return absorbed

    # -- serialization -------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {"arch": self.arch,
                "unit": "pJ",
                "entries": {key: self.entries[key].as_dict()
                            for key in sorted(self.entries)}}

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "CostModel":
        entries = {key: CostEntry.from_dict(value)
                   for key, value in data.get("entries", {}).items()}
        if "default" not in entries:
            raise EntError("cost model is missing the 'default' entry")
        return CostModel(str(data.get("arch", "custom")), entries)

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @staticmethod
    def load(path: str) -> "CostModel":
        with open(path, "r", encoding="utf-8") as fh:
            return CostModel.from_dict(json.load(fh))


def builtin_model(arch: str = DEFAULT_ARCH) -> CostModel:
    """A fresh (mutable) copy of a built-in architecture table."""
    try:
        table = _BUILTIN_TABLES[arch]
    except KeyError:
        raise EntError(f"unknown architecture {arch!r}; expected one "
                       f"of {', '.join(ARCHS)}") from None
    entries = {key: CostEntry(entry.mean_pj, entry.rel_std,
                              list(entry.samples))
               for key, entry in table.items()}
    return CostModel(arch, entries)
