"""``repro.advise`` — the probabilistic energy advisor.

Closes the paper's observe/adapt loop over *program configuration*:
given an ENT program, sweep the per-class static-vs-``?`` mode
assignments, score each candidate's expected energy (empirical
calibration on the simulated platform + a per-architecture
probabilistic cost model over residual checks) and its mode-violation
risk (Monte-Carlo over the observed attributor distributions), and
report the Pareto frontier.  ``repro advise`` is the CLI entry point;
``docs/ADVISE.md`` is the guide.
"""

from repro.advise.costmodel import (ARCHS, DEFAULT_ARCH, CostEntry,
                                    CostModel, builtin_model)
from repro.advise.pareto import Candidate, dominates, pareto_frontier
from repro.advise.propagate import (Uncertain, energy_intervals,
                                    format_interval, sum_uncertain,
                                    widen)
from repro.advise.search import (CAL_STREAM, RISK_STREAM,
                                 VALIDATE_STREAM, AdviseConfig,
                                 AdviseResult, advise_file,
                                 advise_source, measure_assignment,
                                 pin_classes)

__all__ = [
    "ARCHS", "DEFAULT_ARCH", "CostEntry", "CostModel", "builtin_model",
    "Candidate", "dominates", "pareto_frontier",
    "Uncertain", "energy_intervals", "format_interval",
    "sum_uncertain", "widen",
    "AdviseConfig", "AdviseResult", "advise_file", "advise_source",
    "measure_assignment", "pin_classes",
    "CAL_STREAM", "RISK_STREAM", "VALIDATE_STREAM",
]
