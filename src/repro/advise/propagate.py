"""Uncertainty propagation for energy quantities.

The observability layer (PR 1/PR 6) reports energy as point estimates:
``energy_attribution`` buckets measured joules per mode, and
``energy_by_label`` distributes them over profile labels.  Following
the probabilistic-profiler line of work (Nyholm et al., PAPERS.md),
this module replaces those points with :class:`Uncertain` values —
(mean, variance) pairs with the usual propagation rules — so
``repro profile --energy`` and ``repro advise`` carry confidence
intervals instead of bare numbers.

Conventions:

* variances add under ``+``/``-`` (independent-error assumption, the
  standard first-order propagation);
* scaling by a constant ``k`` scales the variance by ``k**2``;
* the sum of ``n`` i.i.d. draws of a cost distribution has mean
  ``n*mu`` and variance ``n*sigma**2`` (:meth:`Uncertain.times`), which
  is how per-operation pJ distributions aggregate over execution
  counts;
* confidence intervals are ``mean +/- z*std`` with a *relative floor*
  on the std (:func:`widen`): tiny empirical samples underestimate
  spread, so reported intervals never claim better than a configurable
  relative precision.

Everything is plain floats — picklable, JSON-friendly, deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Uncertain", "sum_uncertain", "widen", "format_interval",
           "energy_intervals", "Z_99", "Z_95"]

#: Two-sided normal quantiles for the interval renderings.
Z_95 = 1.959964
Z_99 = 2.575829


@dataclass(frozen=True)
class Uncertain:
    """A quantity with first-order uncertainty: mean and variance.

    ``n`` records how many empirical samples produced the estimate
    (0 for purely model-derived values); it travels through arithmetic
    as the minimum of the operands' counts, a conservative "how well do
    we know this" tag.
    """

    mean: float
    var: float = 0.0
    n: int = 0

    @property
    def std(self) -> float:
        return sqrt(self.var) if self.var > 0.0 else 0.0

    def ci(self, z: float = Z_99) -> Tuple[float, float]:
        """The two-sided ``mean +/- z*std`` interval."""
        half = z * self.std
        return (self.mean - half, self.mean + half)

    # -- propagation ---------------------------------------------------

    def __add__(self, other: "Uncertain") -> "Uncertain":
        return Uncertain(self.mean + other.mean, self.var + other.var,
                         _join_n(self.n, other.n))

    def __sub__(self, other: "Uncertain") -> "Uncertain":
        return Uncertain(self.mean - other.mean, self.var + other.var,
                         _join_n(self.n, other.n))

    def scale(self, k: float) -> "Uncertain":
        """``k * X`` for a constant ``k``."""
        return Uncertain(self.mean * k, self.var * k * k, self.n)

    def times(self, count: float) -> "Uncertain":
        """The sum of ``count`` i.i.d. draws: ``n*mu``, ``n*sigma^2``."""
        return Uncertain(self.mean * count, self.var * count, self.n)

    # -- construction --------------------------------------------------

    @staticmethod
    def exact(value: float) -> "Uncertain":
        return Uncertain(value, 0.0, 0)

    @staticmethod
    def from_samples(values: Sequence[float]) -> "Uncertain":
        """Sample mean with the variance *of the mean's population*,
        i.e. the spread a fresh draw is expected to show (unbiased
        sample variance), not the standard error of the mean — the
        advisor's intervals must cover future runs, not the mean."""
        n = len(values)
        if n == 0:
            raise ValueError("from_samples needs at least one value")
        mean = sum(values) / n
        if n == 1:
            return Uncertain(mean, 0.0, 1)
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        return Uncertain(mean, var, n)

    # -- serialization -------------------------------------------------

    def as_dict(self, z: float = Z_99, digits: int = 12
                ) -> Dict[str, object]:
        lo, hi = self.ci(z)
        return {"mean": round(self.mean, digits),
                "std": round(self.std, digits),
                "ci_lo": round(lo, digits),
                "ci_hi": round(hi, digits),
                "n": self.n}

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "Uncertain":
        std = float(data.get("std", 0.0))
        return Uncertain(float(data["mean"]), std * std,
                         int(data.get("n", 0)))


def _join_n(a: int, b: int) -> int:
    if a and b:
        return min(a, b)
    return a or b


def sum_uncertain(items: Iterable[Uncertain]) -> Uncertain:
    """Fold ``+`` over ``items`` (zero-mean exact identity)."""
    total = Uncertain.exact(0.0)
    for item in items:
        total = total + item
    return total


def widen(value: Uncertain, rel_floor: float = 0.015,
          abs_floor: float = 1e-9) -> Uncertain:
    """Clamp the std from below: at least ``rel_floor`` of ``|mean|``
    and at least ``abs_floor`` absolute.

    Small calibration samples (a handful of runs) routinely
    underestimate run-to-run spread; the floor keeps reported
    confidence intervals honest about that.
    """
    floor = max(abs(value.mean) * rel_floor, abs_floor)
    std = max(value.std, floor)
    return Uncertain(value.mean, std * std, value.n)


def format_interval(value: Uncertain, unit: str = "",
                    digits: int = 6, z: float = Z_99) -> str:
    """The CLI's ``mean +/- half-width`` rendering, e.g. ``1.234 ± 0.05 J``."""
    half = z * value.std
    text = f"{value.mean:.{digits}f} ± {half:.{digits}f}"
    return f"{text} {unit}".rstrip()


def energy_intervals(profile, attribution: Dict[str, float],
                     model) -> Dict[str, Uncertain]:
    """Interval-valued ``energy_by_label``.

    The *means* are exactly the point estimates of
    :func:`repro.obs.prof.energy_by_label` (measured joules distributed
    over labels by mode-time share).  The *variance* of each label
    comes from the cost model: a label executed ``n`` times whose
    resolved cost key has relative std ``r`` carries relative
    uncertainty ``r / sqrt(n)`` (the i.i.d.-sum law), so hot labels are
    known tightly and rare ones loosely.

    ``model`` is duck-typed: only ``relative_std(label)`` is called,
    so any cost-model-shaped object works.
    """
    from repro.obs.prof import energy_by_label

    joules = energy_by_label(profile, attribution)
    counts = {name: h.count
              for name, h in profile.registry.histograms.items()}
    out: Dict[str, Uncertain] = {}
    for label, mean in joules.items():
        count = counts.get(label, 0)
        rel = model.relative_std(label)
        if count > 0 and rel > 0.0:
            std = abs(mean) * rel / sqrt(count)
        else:
            std = abs(mean) * rel
        out[label] = Uncertain(mean, std * std, 0)
    return out
