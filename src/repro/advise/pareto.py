"""Pareto frontier over (expected energy, violation risk).

The advisor scores each candidate mode assignment on two axes it wants
to *minimize*:

* ``energy`` — expected joules per episode (an :class:`Uncertain`);
* ``risk`` — expected mode-violation exposure: the summed per-decision
  probability that a pinned class's attributor would have chosen a
  different mode, plus any *observed* new ``EnergyException``s.

Neither axis folds into the other (that is the paper's whole point:
``?`` buys safety with checks, pinning buys energy with risk), so the
advisor reports the non-dominated set instead of a single winner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.advise.propagate import Uncertain

__all__ = ["Candidate", "dominates", "pareto_frontier"]


@dataclass
class Candidate:
    """One scored point in the assignment sweep.

    ``assignment`` maps each dynamic class to the mode it is pinned to,
    or ``None`` to keep the class dynamic (``?``).
    """

    assignment: Dict[str, Optional[str]]
    energy: Uncertain
    risk: float
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def name(self) -> str:
        parts = []
        for cls in sorted(self.assignment):
            mode = self.assignment[cls]
            parts.append(f"{cls}={mode if mode is not None else '?'}")
        return ",".join(parts) if parts else "(empty)"

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "assignment": {cls: self.assignment[cls]
                           for cls in sorted(self.assignment)},
            "name": self.name,
            "energy_j": self.energy.as_dict(),
            "risk": round(self.risk, 9),
        }
        if self.detail:
            out["detail"] = self.detail
        return out


def dominates(a: Candidate, b: Candidate) -> bool:
    """``a`` dominates ``b``: no worse on both axes, better on one.

    Energy compares by mean — the intervals are reporting artifacts;
    ranking on them would let wide uncertainty masquerade as merit.
    """
    if a.energy.mean > b.energy.mean or a.risk > b.risk:
        return False
    return a.energy.mean < b.energy.mean or a.risk < b.risk


def pareto_frontier(candidates: List[Candidate]) -> List[Candidate]:
    """The non-dominated subset, sorted by (energy mean, risk, name).

    Exact ties on both axes are all kept — they are genuinely
    incomparable alternatives — and the sort keeps the output
    deterministic for fixed inputs regardless of arrival order.
    """
    frontier = [c for c in candidates
                if not any(dominates(other, c) for other in candidates)]
    frontier.sort(key=lambda c: (c.energy.mean, c.risk, c.name))
    return frontier
