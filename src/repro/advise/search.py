"""The mode-assignment sweep behind ``repro advise``.

The paper's central trade is *adaptivity vs. energy*: a ``?``-moded
class adapts at runtime but pays for residual dynamic checks and may
do more work than a statically pinned configuration; pinning saves
energy but risks running in the wrong mode.  The advisor makes that
trade explicit:

1. **Enumerate** candidate assignments: each dynamic class either
   keeps ``?`` or is pinned to one of its attributor's reachable modes
   (the class hull; all declared modes when the hull is unknown).
2. **Realize** each candidate as a program variant: pinning rewrites
   the class attributor to ``attributor { return <mode>; }`` at the
   token level and discharges the residual checks the pin proves away
   (:func:`repro.analysis.apply_assignment`).  Variants are fresh
   parses of fresh source — the advised program is never mutated, so
   advising is observation-only by construction.
3. **Calibrate** each variant empirically: ``runs`` executions per
   battery level on the simulated platform, with *paired* seeds
   (``derive_seed(seed, CAL_STREAM, run, battery)`` shared across
   candidates — common random numbers, so identical behaviour yields
   bit-identical energy).  Measured joules are the behavioural term;
   the cost model prices the residual checks that actually fired (the
   simulator charges checks nothing, so the two terms never double
   count).
4. **Score risk** by Monte-Carlo: per pinned class, draws from the
   Laplace-smoothed empirical attributor-mode distribution (observed
   on the dynamic baseline's trace) estimate the per-decision
   probability the attributor would have picked a different mode;
   observed new ``EnergyException``s add on top.
5. **Report** the Pareto frontier over (expected energy, risk).

Everything is deterministic for a fixed ``--seed``: candidate order,
RNG streams, and result assembly are independent of ``--jobs`` and of
worker completion order.
"""

from __future__ import annotations

import itertools
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import EnergyException, EntError
from repro.core.rng import SplitMix64, derive_seed
from repro.lang.engines import DEFAULT_ENGINE, resolve_engine
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind

from repro.advise.costmodel import (DEFAULT_ARCH, CostModel,
                                    builtin_model)
from repro.advise.pareto import Candidate, pareto_frontier
from repro.advise.propagate import Uncertain, sum_uncertain, widen

__all__ = ["AdviseConfig", "AdviseResult", "pin_classes",
           "advise_source", "advise_file", "measure_assignment",
           "CAL_STREAM", "RISK_STREAM", "VALIDATE_STREAM"]

#: ``derive_seed`` stream constants scoping the advisor's RNG away
#: from the meter, fleet, and platform streams.
CAL_STREAM = 0x4144_5643       # calibration platform seeds
RISK_STREAM = 0x4144_564D      # per-candidate Monte-Carlo risk streams
VALIDATE_STREAM = 0x4144_5656  # held-out validation platform seeds


# ---------------------------------------------------------------------------
# Pinning: token-level attributor rewrite


def _line_offsets(source: str) -> List[int]:
    offsets = [0]
    for idx, ch in enumerate(source):
        if ch == "\n":
            offsets.append(idx + 1)
    return offsets


def _offset(offsets: List[int], line: int, column: int) -> int:
    return offsets[line - 1] + (column - 1)


def pin_classes(source: str, assignment: Dict[str, Optional[str]],
                filename: str = "<advise>") -> str:
    """Rewrite ``source`` so each pinned class's *class-level*
    attributor body becomes ``{ return <mode>; }``.

    Works on the token stream, not the AST, so the rewritten text
    round-trips through the normal front end and every span outside
    the replaced bodies is preserved.  The class attributor is the
    ``attributor`` keyword at class-body depth whose previous
    significant token is ``{``, ``}`` or ``;`` — method-level
    attributors follow a ``)`` and are left alone (they remain part of
    the candidate's dynamic semantics).
    """
    pins = {cls: mode for cls, mode in assignment.items()
            if mode is not None}
    if not pins:
        return source
    tokens = tokenize(source, filename)
    offsets = _line_offsets(source)
    replacements: List[Tuple[int, int, str]] = []
    seen: Dict[str, bool] = {cls: False for cls in pins}

    depth = 0
    current_class: Optional[str] = None
    class_depth = -1
    prev_kind: Optional[TokenKind] = None
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        kind = tok.kind
        if kind == TokenKind.LBRACE:
            depth += 1
        elif kind == TokenKind.RBRACE:
            depth -= 1
            if current_class is not None and depth < class_depth:
                current_class = None
        elif kind == TokenKind.KW_CLASS and depth == 0:
            if i + 1 < len(tokens) \
                    and tokens[i + 1].kind == TokenKind.IDENT:
                current_class = tokens[i + 1].text
                class_depth = 1
        elif (kind == TokenKind.KW_ATTRIBUTOR
              and current_class in pins
              and depth == class_depth
              and prev_kind in (TokenKind.LBRACE, TokenKind.RBRACE,
                                TokenKind.SEMI)):
            # Find the attributor body: the next "{" through its
            # matching "}".
            j = i + 1
            while j < len(tokens) \
                    and tokens[j].kind != TokenKind.LBRACE:
                j += 1
            if j == len(tokens):
                raise EntError(
                    f"malformed attributor in class {current_class}")
            body_depth = 0
            k = j
            while k < len(tokens):
                if tokens[k].kind == TokenKind.LBRACE:
                    body_depth += 1
                elif tokens[k].kind == TokenKind.RBRACE:
                    body_depth -= 1
                    if body_depth == 0:
                        break
                k += 1
            if k == len(tokens):
                raise EntError(
                    f"unterminated attributor in class {current_class}")
            start = _offset(offsets, tok.span.line, tok.span.column)
            close = tokens[k]
            end = _offset(offsets, close.span.line,
                          close.span.column) + len(close.text)
            mode = pins[current_class]
            replacements.append(
                (start, end, f"attributor {{ return {mode}; }}"))
            seen[current_class] = True
            i = k + 1
            prev_kind = TokenKind.RBRACE
            continue
        prev_kind = kind
        i += 1

    missing = sorted(cls for cls, found in seen.items() if not found)
    if missing:
        raise EntError(
            "cannot pin class(es) without a class-level attributor: "
            + ", ".join(missing))
    out = source
    for start, end, text in sorted(replacements, reverse=True):
        out = out[:start] + text + out[end:]
    return out


# ---------------------------------------------------------------------------
# Configuration


@dataclass
class AdviseConfig:
    arch: str = DEFAULT_ARCH
    engine: str = DEFAULT_ENGINE
    system: str = "A"
    seed: int = 0
    runs: int = 4                    # calibration runs per battery level
    samples: int = 256               # Monte-Carlo draws per pinned class
    batteries: Tuple[float, ...] = (1.0,)
    jobs: int = 1                    # 0 = one worker per CPU
    fuel: int = 5_000_000
    program_args: Tuple[str, ...] = ()
    #: Dynamic-check depth for calibration runs (``full`` or
    #: ``transient``); forwarded to :class:`InterpOptions.checks`.
    checks: str = "full"
    max_candidates: int = 128
    ci_rel_floor: float = 0.015


# ---------------------------------------------------------------------------
# Calibration worker (top-level and pure so it pickles under --jobs N)


def _calibration_worker(task: Dict[str, object]) -> Dict[str, object]:
    """Run one (candidate, run, battery) cell and return its
    measurements.  Pure function of ``task`` — no shared state — so
    results are identical whether it runs inline or in a pool."""
    from repro.analysis import analyze_program, apply_assignment
    from repro.lang.interp import Interpreter, InterpOptions
    from repro.lang.typechecker import check_program
    from repro.obs.prof import Profiler
    from repro.platform.systems import make_platform

    assignment: Dict[str, Optional[str]] = task["assignment"]
    pinned = sorted(cls for cls, mode in assignment.items()
                    if mode is not None)
    source = pin_classes(task["source"], assignment,
                         filename=task["file"])
    checked = check_program(source)
    report = analyze_program(checked, annotate=False, file=task["file"])
    discharged = apply_assignment(report.sites, pinned)
    platform = make_platform(task["system"], seed=task["platform_seed"],
                             battery_fraction=task["battery"])
    tracer = None
    if task["collect_events"]:
        from repro.obs.tracer import Tracer
        tracer = Tracer(capacity=task.get("trace_capacity", 65536))
    profiler = Profiler(task["engine"])
    options = InterpOptions(engine=task["engine"], elide_checks=True,
                            fuel=task["fuel"],
                            checks=task.get("checks", "full"))
    interp = Interpreter(checked, platform=platform, options=options,
                         seed=task["platform_seed"], tracer=tracer,
                         profiler=profiler)
    toplevel_exception = False
    try:
        interp.run(list(task["args"]))
    except EnergyException:
        toplevel_exception = True
    profile = profiler.profile
    result: Dict[str, object] = {
        "energy_j": platform.energy_total_j(),
        "check_executed": {
            sid: int(entry.get("executed", 0))
            for sid, entry in sorted(profile.check_sites.items())
            if int(entry.get("executed", 0)) > 0},
        "energy_exceptions": interp.stats.energy_exceptions,
        "steps": interp.stats.steps,
        "toplevel_exception": toplevel_exception,
        "discharged": discharged,
        "residual_sites": sorted(s.site_id for s in report.sites
                                 if s.status == "residual"
                                 and s.owner_class not in pinned),
    }
    if tracer is not None:
        counts: Dict[str, Dict[str, int]] = {}
        for event in tracer.events():
            if getattr(event, "kind", None) != "attributor":
                continue
            mode = event.mode
            if mode is None:
                continue
            per_cls = counts.setdefault(event.cls, {})
            per_cls[mode] = per_cls.get(mode, 0) + 1
        result["attributor_modes"] = counts
    return result


# ---------------------------------------------------------------------------
# Result


@dataclass
class AdviseResult:
    file: str
    config: AdviseConfig
    model: CostModel
    classes: Dict[str, List[str]]
    candidates: List[Candidate]
    frontier: List[Candidate]
    notes: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        cfg = self.config
        return {
            "file": self.file,
            "arch": self.model.arch,
            "engine": cfg.engine,
            "system": cfg.system,
            "seed": cfg.seed,
            "runs": cfg.runs,
            "samples": cfg.samples,
            "batteries": list(cfg.batteries),
            "classes": {cls: list(modes)
                        for cls, modes in sorted(self.classes.items())},
            "candidates": [c.as_dict() for c in self.candidates],
            "frontier": [c.as_dict() for c in self.frontier],
            "notes": list(self.notes),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    def render(self, top: Optional[int] = None) -> str:
        from repro.advise.propagate import format_interval

        lines = [f"advise {self.file} — arch {self.model.arch}, "
                 f"engine {self.config.engine}, system "
                 f"{self.config.system}, seed {self.config.seed}"]
        if self.classes:
            decls = ", ".join(f"{cls} ∈ {{?, {', '.join(modes)}}}"
                              for cls, modes
                              in sorted(self.classes.items()))
            lines.append(f"dynamic classes: {decls}")
        lines.append("")
        frontier_keys = {c.name for c in self.frontier}
        ranked = sorted(self.candidates,
                        key=lambda c: (c.energy.mean, c.risk, c.name))
        if top is not None and top < len(ranked):
            shown = [c for c in ranked if c.name in frontier_keys]
            extras = [c for c in ranked if c.name not in frontier_keys]
            shown += extras[:max(0, top - len(shown))]
            shown.sort(key=lambda c: (c.energy.mean, c.risk, c.name))
            dropped = len(ranked) - len(shown)
        else:
            shown, dropped = ranked, 0
        name_w = max(len("assignment"),
                     *(len(c.name) for c in shown)) if shown else 10
        lines.append(f"  {'assignment':<{name_w}}  "
                     f"{'energy (99% CI)':>28}  {'risk':>8}  frontier")
        for cand in shown:
            mark = "  *" if cand.name in frontier_keys else ""
            lines.append(
                f"  {cand.name:<{name_w}}  "
                f"{format_interval(cand.energy, 'J'):>28}  "
                f"{cand.risk:>8.4f}{mark}")
        if dropped:
            lines.append(f"  ... ({dropped} more candidates; "
                         f"raise --top)")
        lines.append("")
        lines.append(f"Pareto frontier: {len(self.frontier)} "
                     f"non-dominated assignment(s)")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The sweep


def _enumerate_candidates(classes: Dict[str, List[str]],
                          cap: int, notes: List[str]
                          ) -> List[Dict[str, Optional[str]]]:
    """All-dynamic first, then the cross product of per-class options
    in deterministic (class-name, mode-name) order, capped at ``cap``."""
    names = sorted(classes)
    options: List[List[Optional[str]]] = [
        [None] + list(classes[cls]) for cls in names]
    assignments: List[Dict[str, Optional[str]]] = []
    for combo in itertools.product(*options):
        assignments.append(dict(zip(names, combo)))
        if len(assignments) > cap:
            total = 1
            for opts in options:
                total *= len(opts)
            notes.append(f"assignment space truncated to {cap} of "
                         f"{total} candidates")
            return assignments[:cap]
    return assignments


def _mc_mismatch_rate(rng: SplitMix64, modes: Sequence[str],
                      weights: Sequence[float], pinned: str,
                      samples: int) -> float:
    """Monte-Carlo estimate of P(draw != pinned) under the smoothed
    attributor distribution."""
    total = sum(weights)
    mismatches = 0
    for _ in range(samples):
        u = rng.random() * total
        acc = 0.0
        drawn = modes[-1]
        for mode, weight in zip(modes, weights):
            acc += weight
            if u < acc:
                drawn = mode
                break
        if drawn != pinned:
            mismatches += 1
    return mismatches / samples if samples else 0.0


def advise_source(source: str, file: str = "<advise>",
                  config: Optional[AdviseConfig] = None,
                  model: Optional[CostModel] = None) -> AdviseResult:
    """Run the full sweep over ``source`` and return the scored result."""
    from repro.analysis.obligations import ProgramAnalyzer
    from repro.lang.typechecker import check_program

    cfg = config or AdviseConfig()
    cfg.engine = resolve_engine(cfg.engine)
    model = model or builtin_model(cfg.arch)
    notes: List[str] = []

    checked = check_program(source)
    analyzer = ProgramAnalyzer(checked)
    analyzer.analyze()
    declared = sorted(m.name for m in checked.lattice.declared_modes)
    hulls = analyzer.class_hulls()
    classes: Dict[str, List[str]] = {}
    for cls in analyzer.dynamic_classes():
        hull = hulls.get(cls)
        modes = sorted(m.name for m in hull) if hull else list(declared)
        classes[cls] = modes
    if not classes:
        notes.append("no dynamic classes; nothing to advise")

    assignments = _enumerate_candidates(classes, cfg.max_candidates,
                                        notes)

    # -- calibration ---------------------------------------------------
    tasks: Dict[Tuple[int, int, int], Dict[str, object]] = {}
    for cand_idx, assignment in enumerate(assignments):
        dynamic_baseline = all(m is None
                               for m in assignment.values())
        for run_idx in range(cfg.runs):
            for bat_idx, battery in enumerate(cfg.batteries):
                tasks[(cand_idx, run_idx, bat_idx)] = {
                    "source": source,
                    "file": file,
                    "assignment": assignment,
                    "engine": cfg.engine,
                    "system": cfg.system,
                    "battery": battery,
                    "platform_seed": derive_seed(
                        cfg.seed, CAL_STREAM, run_idx, bat_idx),
                    "fuel": cfg.fuel,
                    "args": tuple(cfg.program_args),
                    "checks": cfg.checks,
                    "collect_events": dynamic_baseline,
                }

    keys = sorted(tasks)
    results: Dict[Tuple[int, int, int], Dict[str, object]] = {}
    jobs = cfg.jobs
    if jobs == 0:
        import os
        jobs = os.cpu_count() or 1
    if jobs > 1 and len(keys) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for key, result in zip(
                    keys, pool.map(_calibration_worker,
                                   [tasks[k] for k in keys])):
                results[key] = result
    else:
        for key in keys:
            results[key] = _calibration_worker(tasks[key])

    # -- baseline attributor distribution ------------------------------
    baseline_idx = next(
        (idx for idx, a in enumerate(assignments)
         if all(m is None for m in a.values())), None)
    attr_counts: Dict[str, Dict[str, int]] = {}
    baseline_exc = 0.0
    if baseline_idx is not None:
        cells = [results[k] for k in keys if k[0] == baseline_idx]
        for cell in cells:
            for cls, modes in cell.get("attributor_modes",
                                       {}).items():
                per_cls = attr_counts.setdefault(cls, {})
                for mode, count in modes.items():
                    per_cls[mode] = per_cls.get(mode, 0) + count
        if cells:
            baseline_exc = (sum(c["energy_exceptions"] for c in cells)
                            / len(cells))

    # -- scoring -------------------------------------------------------
    candidates: List[Candidate] = []
    for cand_idx, assignment in enumerate(assignments):
        cells = [results[k] for k in keys if k[0] == cand_idx]
        if not cells:
            continue
        energies = [c["energy_j"] for c in cells]
        measured = widen(Uncertain.from_samples(energies),
                         rel_floor=cfg.ci_rel_floor)

        # Residual-check energy from the cost model: mean executed
        # count per site across cells, priced per check kind.  The
        # simulator charges checks zero joules, so this term never
        # double-counts the measured energy.
        check_means: Dict[str, float] = {}
        for cell in cells:
            for sid, count in cell["check_executed"].items():
                check_means[sid] = check_means.get(sid, 0.0) + count
        for sid in check_means:
            check_means[sid] /= len(cells)
        check_energy = sum_uncertain(
            model.cost_j("check." + sid, count)
            for sid, count in sorted(check_means.items()))
        energy = measured + check_energy

        # Monte-Carlo per-decision violation risk for each pin.
        rng = SplitMix64(derive_seed(cfg.seed, RISK_STREAM, cand_idx))
        risk = 0.0
        risk_by_class: Dict[str, float] = {}
        for cls in sorted(assignment):
            pinned_mode = assignment[cls]
            if pinned_mode is None:
                continue
            support = classes.get(cls, declared)
            observed = attr_counts.get(cls, {})
            weights = [observed.get(mode, 0) + 1.0 for mode in support]
            rate = _mc_mismatch_rate(rng, support, weights,
                                     pinned_mode, cfg.samples)
            risk_by_class[cls] = rate
            risk += rate
        exc = (sum(c["energy_exceptions"] for c in cells)
               / len(cells))
        exc_delta = max(0.0, exc - baseline_exc)
        risk += exc_delta

        detail = {
            "measured_j": measured.as_dict(),
            "check_model_j": check_energy.as_dict(),
            "check_executed_mean": {
                sid: round(v, 6)
                for sid, v in sorted(check_means.items())},
            "energy_exceptions_mean": round(exc, 6),
            "exception_risk": round(exc_delta, 6),
            "risk_by_class": {cls: round(v, 6)
                              for cls, v in
                              sorted(risk_by_class.items())},
            "residual_sites": cells[0]["residual_sites"],
            "steps_mean": round(sum(c["steps"] for c in cells)
                                / len(cells), 3),
        }
        candidates.append(Candidate(assignment=dict(assignment),
                                    energy=energy, risk=risk,
                                    detail=detail))

    frontier = pareto_frontier(candidates)
    return AdviseResult(file=file, config=cfg, model=model,
                        classes=classes, candidates=candidates,
                        frontier=frontier, notes=notes)


def measure_assignment(source: str,
                       assignment: Dict[str, Optional[str]],
                       config: AdviseConfig, platform_seed: int,
                       battery: Optional[float] = None,
                       file: str = "<advise>") -> Dict[str, object]:
    """Run one assignment once on a fresh platform seed and return its
    measurements (``energy_j``, ``check_executed``, stats).

    This is the frontier-validation entry point: advise, then replay a
    recommended assignment on *held-out* seeds (e.g. derived under
    :data:`VALIDATE_STREAM`) and check the measured joules land inside
    the reported confidence interval.
    """
    return _calibration_worker({
        "source": source,
        "file": file,
        "assignment": dict(assignment),
        "engine": resolve_engine(config.engine),
        "system": config.system,
        "battery": config.batteries[0] if battery is None else battery,
        "platform_seed": platform_seed,
        "fuel": config.fuel,
        "args": tuple(config.program_args),
        "checks": config.checks,
        "collect_events": False,
    })


def advise_file(path: str, config: Optional[AdviseConfig] = None,
                model: Optional[CostModel] = None) -> AdviseResult:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return advise_source(source, file=path, config=config, model=model)
