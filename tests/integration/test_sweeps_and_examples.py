"""Integration tests: the battery-drain sweep and the example scripts."""

import pathlib
import subprocess
import sys

import pytest

from repro.eval import battery_drain_run

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


class TestBatteryDrain:
    @pytest.fixture(scope="class")
    def run(self):
        return battery_drain_run("jspider", "A", iterations=40,
                                 battery_scale=0.0015, seed=2)

    def test_covers_all_modes(self, run):
        assert set(run.mode_trajectory) == {
            "full_throttle", "managed", "energy_saver"}

    def test_monotone_downward(self, run):
        assert run.monotone_downward()

    def test_transitions_at_thresholds(self, run):
        for index in run.transitions:
            step = run.steps[index]
            if step.boot_mode == "managed":
                assert 0.50 <= step.battery_before < 0.75
            elif step.boot_mode == "energy_saver":
                assert step.battery_before < 0.50

    def test_qos_follows_boot(self, run):
        for step in run.steps:
            assert step.qos_mode == step.boot_mode

    def test_stops_when_empty(self):
        run = battery_drain_run("crypto", "A", iterations=500,
                                battery_scale=0.0002, seed=1)
        assert len(run.steps) < 500

    def test_energy_recorded(self, run):
        assert run.total_energy_j > 0
        assert all(step.energy_j > 0 for step in run.steps)


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "crawler.py",
    "temperature_aware_renderer.py",
    "android_battery_app.py",
    "battery_drain.py",
    "energy_debugging.py",
])
def test_example_runs(script):
    """Every example script runs to completion."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=180)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


@pytest.mark.parametrize("program", sorted(
    (EXAMPLES / "ent").glob("*.ent")), ids=lambda p: p.name)
def test_ent_program_runs_via_cli(program):
    """Every .ent sample typechecks and runs through the CLI."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", "run", str(program),
         "--system", "A", "--battery", "0.6", "--seed", "1"],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
