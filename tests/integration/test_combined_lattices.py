"""A battery-aware *and* temperature-aware program in one lattice.

The E3 benchmarks restructure battery-aware programs to also regulate
temperature; in ENT the two concerns coexist as independent chains of
one mode lattice.  This test runs a combined program end-to-end on the
System A simulator: a battery-booted Agent processes work units, and a
temperature-attributed Sleeper duty-cycles the CPU in between.
"""

import pytest

from repro.lang import run_source
from repro.platform import SystemA

COMBINED = """
modes {
    energy_saver <= managed; managed <= full_throttle;
    overheating <= hot; hot <= safe;
}

class Sleeper@mode<?X> {
    attributor {
        double t = Ext.temperature();
        if (t < 60.0) { return safe; }
        if (t <= 65.0) { return hot; }
        return overheating;
    }
    Sleeper() { }
    mcase<int> intervalMs = mcase{
        overheating: 1000; hot: 250; safe: 0; default: 0;
    };
}

class Agent@mode<?X> {
    attributor {
        if (Ext.battery() >= 0.75) { return full_throttle; }
        if (Ext.battery() >= 0.50) { return managed; }
        return energy_saver;
    }
    Agent() { }
    mcase<int> unitsPerStep = mcase{
        energy_saver: 8000; managed: 16000; full_throttle: 25000;
        default: 8000;
    };
    int step() {
        Sys.work(unitsPerStep);
        return unitsPerStep;
    }
}

class Main {
    void main() {
        Agent a = snapshot (new Agent@mode<?>());
        Sleeper sleeper = new Sleeper@mode<?>();
        int sleeps = 0;
        int worked = 0;
        int i = 0;
        while (i < 30) {
            worked = worked + a.step();
            Sleeper s = snapshot sleeper;
            int ms = s.intervalMs;
            if (ms > 0) { Sys.sleep(ms); sleeps = sleeps + 1; }
            i = i + 1;
        }
        Sys.print("worked=" + worked);
        Sys.print("sleeps=" + sleeps);
    }
}
"""


class TestCombinedLattices:
    @pytest.fixture(scope="class")
    def high_battery(self):
        platform = SystemA(seed=5)
        platform.battery.set_fraction(0.95)
        from repro.lang import run_source as rs
        interp = rs(COMBINED, platform=platform)
        return interp, platform

    def test_runs_to_completion(self, high_battery):
        interp, _ = high_battery
        assert interp.output[0].startswith("worked=")

    def test_full_throttle_triggers_thermal_sleeps(self, high_battery):
        interp, platform = high_battery
        sleeps = int(interp.output[1].split("=")[1])
        assert sleeps > 0
        # Duty cycling keeps the die out of deep overheating.
        assert platform.cpu_temperature() < 68.0

    def test_low_battery_means_less_work_and_heat(self):
        def run(battery):
            platform = SystemA(seed=5)
            platform.battery.set_fraction(battery)
            interp = run_source(COMBINED, platform=platform)
            worked = int(interp.output[0].split("=")[1])
            return worked, platform.cpu_temperature(), \
                platform.energy_total_j()

        hi_work, hi_temp, hi_energy = run(0.95)
        lo_work, lo_temp, lo_energy = run(0.30)
        assert lo_work < hi_work
        assert lo_temp <= hi_temp + 0.5
        assert lo_energy < hi_energy

    def test_chains_stay_incomparable(self):
        from repro.lang import check_program
        checked = check_program(COMBINED)
        from repro.core.modes import Mode
        assert not checked.lattice.comparable(Mode("managed"),
                                              Mode("hot"))
