"""Integration tests over the E1/E2/E3 experiment harnesses: the
paper-shape assertions DESIGN.md commits to."""

import pytest

from repro.eval import (figure9, figure10, figure11, measure_overhead,
                        run_e1_episode, run_e2_episode, run_e3_episode,
                        trace_stats)
from repro.eval.config import VIOLATING_COMBOS
from repro.eval.e3 import HOT_THRESHOLD_C, OVERHEAT_THRESHOLD_C
from repro.workloads import ES, FT, MG, get_workload


class TestE1Episodes:
    def test_non_violating_combo_no_exception(self):
        episode = run_e1_episode(get_workload("jspider"), "A", FT, MG)
        assert not episode.exception_raised
        assert episode.qos_mode == MG
        assert episode.energy_j > 0

    @pytest.mark.parametrize("boot,workload_mode", VIOLATING_COMBOS)
    def test_violating_combo_throws(self, boot, workload_mode):
        episode = run_e1_episode(get_workload("jspider"), "A", boot,
                                 workload_mode)
        assert episode.exception_raised
        assert episode.qos_mode == ES  # QoS scaled down

    def test_silent_never_throws(self):
        episode = run_e1_episode(get_workload("jspider"), "A", ES, FT,
                                 silent=True)
        assert not episode.exception_raised
        assert episode.qos_mode == MG  # default QoS retained

    def test_ent_saves_vs_silent_on_violation(self):
        workload = get_workload("sunflow")
        ent = run_e1_episode(workload, "A", ES, FT)
        silent = run_e1_episode(workload, "A", ES, FT, silent=True)
        assert ent.energy_j < silent.energy_j

    def test_matching_combo_equals_silent_roughly(self):
        workload = get_workload("crypto")
        ent = run_e1_episode(workload, "A", FT, FT)
        silent = run_e1_episode(workload, "A", FT, FT, silent=True)
        assert ent.energy_j == pytest.approx(silent.energy_j, rel=0.10)

    def test_violating_property(self):
        episode = run_e1_episode(get_workload("crypto"), "A", MG, FT)
        assert episode.violating
        episode = run_e1_episode(get_workload("crypto"), "A", FT, MG)
        assert not episode.violating


class TestFigure9Shape:
    @pytest.fixture(scope="class")
    def bars(self):
        return figure9(systems=("A",))

    def test_every_violating_bar_saves_energy(self, bars):
        """The paper's headline: respecting the waterfall saves energy
        in all exception-throwing combos."""
        for bar in bars:
            assert bar.percent_saved > 0, bar.benchmark

    def test_savings_magnitudes_in_band(self, bars):
        # Paper Figure 9 System A: roughly 7% - 58% savings.
        for bar in bars:
            assert 3.0 < bar.percent_saved < 75.0, (
                bar.benchmark, bar.percent_saved)

    def test_normalization_baseline(self, bars):
        # The silent ft/ft run is the 1.0 reference, so silent bars on
        # the ft-workload combos sit at ~1.0.
        for bar in bars:
            if bar.workload_mode == FT:
                assert bar.silent_normalized == pytest.approx(1.0,
                                                              rel=0.05)

    def test_six_system_a_benchmarks(self, bars):
        assert len({bar.benchmark for bar in bars}) == 6
        assert len(bars) == 18  # 3 combos each


class TestE2Episodes:
    def test_boot_mode_selects_qos(self):
        for boot in (ES, MG, FT):
            episode = run_e2_episode(get_workload("sunflow"), "A", boot)
            assert episode.qos_mode == boot

    def test_energy_proportionality_system_a(self):
        rows = figure10(systems=("A",))
        for row in rows:
            assert row.energy_proportional, row.benchmark

    def test_sunflow_savings_match_paper(self):
        rows = {r.benchmark: r for r in figure10(systems=("A",))}
        # Paper: 65.24% / 42.28%.
        assert rows["sunflow"].percent_saved(ES) == pytest.approx(
            65.24, abs=6.0)
        assert rows["sunflow"].percent_saved(MG) == pytest.approx(
            42.28, abs=6.0)

    def test_pi_benchmarks_smaller_savings(self):
        """Section 6.2: Pi-specific (time-fixed) benchmarks yield less
        percentage savings than the ported compute benchmarks."""
        rows = {r.benchmark: r for r in figure10(systems=("B",))}
        for pi_specific in ("camera", "video", "javaboy"):
            assert (rows[pi_specific].percent_saved(ES)
                    < rows["sunflow"].percent_saved(ES))

    def test_javaboy_near_paper_value(self):
        rows = {r.benchmark: r for r in figure10(systems=("B",))}
        # Paper: 1.34%.
        assert rows["javaboy"].percent_saved(ES) == pytest.approx(
            1.34, abs=1.5)

    def test_time_fixed_durations_equal_across_boots(self):
        durations = []
        for boot in (ES, FT):
            episode = run_e2_episode(get_workload("video"), "B", boot)
            durations.append(episode.duration_s)
        assert durations[0] == pytest.approx(durations[1], rel=0.02)


class TestE3Shape:
    @pytest.fixture(scope="class")
    def pairs(self):
        return {p.benchmark: p for p in figure11()}

    def test_java_hotter_than_ent(self, pairs):
        for name, pair in pairs.items():
            ent = trace_stats(pair.ent)["tail_mean_c"]
            java = trace_stats(pair.java)["tail_mean_c"]
            assert java > ent, name

    def test_ent_hovers_near_hot_threshold(self, pairs):
        """Most ENT runs hover around the hot threshold — sunflow being
        the exception that hovers near the overheating threshold."""
        for name in ("jython", "findbugs", "pagerank", "xalan"):
            tail = trace_stats(pairs[name].ent)["tail_mean_c"]
            assert abs(tail - HOT_THRESHOLD_C) < 5.0, (name, tail)
        sunflow_tail = trace_stats(pairs["sunflow"].ent)["tail_mean_c"]
        assert abs(sunflow_tail - OVERHEAT_THRESHOLD_C) < 4.0

    def test_java_climbs_continuously(self, pairs):
        for name, pair in pairs.items():
            temps = [t for _, t in pair.java.trace]
            # The last quarter should be hotter than the first quarter.
            quarter = max(1, len(temps) // 4)
            assert (sum(temps[-quarter:]) / quarter
                    > sum(temps[:quarter]) / quarter + 5.0), name

    def test_ent_sleeps_java_does_not(self, pairs):
        for pair in pairs.values():
            assert pair.ent.sleeps > 0
            assert pair.java.sleeps == 0

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            run_e3_episode(get_workload("sunflow"), "sometimes")

    def test_unit_less_workload_rejected(self):
        with pytest.raises(ValueError):
            run_e3_episode(get_workload("crypto"), "ent")


class TestOverhead:
    def test_overhead_small(self):
        """Figure 6: runtime support costs within a few percent."""
        row = measure_overhead("jspider", repeats=5)
        assert abs(row.overhead_percent) < 15.0

    def test_static_columns(self):
        row = measure_overhead("batik", repeats=1)
        assert row.cloc == 179_284
        assert row.ent_changes == 225


class TestReproducibility:
    def test_same_seed_same_energy(self):
        a = run_e1_episode(get_workload("crypto"), "A", MG, MG, seed=3)
        b = run_e1_episode(get_workload("crypto"), "A", MG, MG, seed=3)
        assert a.energy_j == pytest.approx(b.energy_j)

    def test_different_seeds_differ(self):
        energies = {round(run_e1_episode(get_workload("crypto"), "A",
                                         MG, MG, seed=s).energy_j, 6)
                    for s in range(5)}
        assert len(energies) > 1

    def test_system_c_noisier_than_a(self):
        """Section 5's data-collection observation: System C has the
        highest relative standard deviation."""
        import statistics

        def rel_std(system, name):
            energies = [run_e1_episode(get_workload(name), system, FT,
                                       MG, seed=s).energy_j
                        for s in range(1, 9)]
            return statistics.pstdev(energies) / statistics.mean(energies)

        assert rel_std("C", "duckduckgo") > rel_std("A", "findbugs")
