"""End-to-end tests of the paper's listings, written in ENT and run
through the full pipeline (lex -> parse -> typecheck -> interpret)."""

import pytest

from repro.core.errors import EnergyException, WaterfallError
from repro.lang import InterpOptions, check_program, run_source
from repro.lang.interp import NullPlatform

MODES = "modes { energy_saver <= managed; managed <= full_throttle; }\n"


class _Battery(NullPlatform):
    def __init__(self, level):
        super().__init__()
        self._level = level

    def battery_fraction(self):
        return self._level


#: Listing 1, adapted: the energy-aware web crawler.
LISTING1 = MODES + """
class Rule {
    boolean localOnly;
    Rule(boolean localOnly) { this.localOnly = localOnly; }
}

class Site@mode<?X> {
    List resources;
    attributor {
        if (resources.size() > 200) { return full_throttle; }
        if (resources.size() > 50) { return managed; }
        return energy_saver;
    }
    Site(int n) {
        this.resources = new List();
        int i = 0;
        while (i < n) { resources.add("r" + i); i = i + 1; }
    }
    mcase<int> depth = mcase{
        energy_saver: 1; managed: 2; full_throttle: 3;
    };
    int crawl() {
        int d = depth;
        foreach (String r : resources) { Sys.work(d); }
        return resources.size() * d;
    }
}

class Agent@mode<?X> {
    List rules;
    attributor {
        if (Ext.battery() >= 0.75) { return full_throttle; }
        foreach (Rule r : rules) {
            if (r.localOnly) { return full_throttle; }
        }
        if (Ext.battery() >= 0.50) { return managed; }
        return energy_saver;
    }
    Agent(boolean localConfig) {
        this.rules = new List();
        if (localConfig) { rules.add(new Rule(true)); }
    }
    int work(int n) {
        Site ds = new Site@mode<?>(n);
        Site s = snapshot ds [_, X];
        return s.crawl();
    }
}

class Main {
    void main() {
        Agent da = new Agent@mode<?>(false);
        Agent a = snapshot da;
        Sys.print("small=" + a.work(40));
        try {
            Sys.print("big=" + a.work(500));
        } catch (EnergyException e) {
            Sys.print("exception");
            Sys.print("degraded=" + a.work(50));
        }
    }
}
"""


class TestListing1:
    def test_high_battery_runs_everything(self):
        interp = run_source(LISTING1, platform=_Battery(0.9))
        assert interp.output == ["small=40", "big=1500"]

    def test_medium_battery_throws_and_degrades(self):
        # The small site attributes to energy_saver (depth 1) on its
        # own; the big site attributes full_throttle, which the managed
        # agent's bounded snapshot rejects.
        interp = run_source(LISTING1, platform=_Battery(0.6))
        assert interp.output == ["small=40", "exception", "degraded=50"]

    def test_low_battery(self):
        interp = run_source(LISTING1, platform=_Battery(0.3))
        assert interp.output == ["small=40", "exception", "degraded=50"]

    def test_config_rule_forces_full_throttle(self):
        # A local-only configuration boots full_throttle even on a low
        # battery — the configuration-dependent scenario of section 2.
        source = LISTING1.replace("new Agent@mode<?>(false)",
                                  "new Agent@mode<?>(true)")
        interp = run_source(source, platform=_Battery(0.3))
        assert interp.output == ["small=40", "big=1500"]

    def test_silent_burns_more_energy(self):
        ent = run_source(LISTING1, platform=_Battery(0.6))
        silent = run_source(LISTING1, platform=_Battery(0.6),
                            options=InterpOptions(silent=True))
        assert silent.platform.work_units > ent.platform.work_units

    def test_forgotten_bound_is_compile_error(self):
        """Section 6.3's debuggability scenario: dropping [_, X] from
        the snapshot makes the crawl a static waterfall violation."""
        source = LISTING1.replace("snapshot ds [_, X]", "snapshot ds")
        with pytest.raises(WaterfallError):
            check_program(source)


#: Listing 2, adapted: mode co-adaptation through generic modes.
LISTING2 = MODES + """
class Rule { }

class DepthRule@mode<X> extends Rule {
    mcase<int> depth = mcase{
        energy_saver: 1; managed: 2; full_throttle: 3;
    };
}

class MaxResourcesRule@mode<X> extends Rule {
    mcase<int> maxresources = mcase{
        energy_saver: 50; managed: 100; full_throttle: 200;
    };
}

class Site@mode<X> {
    int crawl(DepthRule@mode<X> r1, MaxResourcesRule@mode<X> r2) {
        return r1.depth * 1000 + r2.maxresources;
    }
}

class Agent@mode<?X> {
    attributor {
        if (Ext.battery() >= 0.75) { return full_throttle; }
        if (Ext.battery() >= 0.50) { return managed; }
        return energy_saver;
    }
    Agent() { }
    int work() {
        Site@mode<X> s = new Site@mode<X>();
        return s.crawl(new DepthRule@mode<X>(),
                       new MaxResourcesRule@mode<X>());
    }
}

class Main {
    void main() {
        Agent da = new Agent@mode<?>();
        Agent a = snapshot da;
        Sys.print(a.work());
    }
}
"""


class TestListing2:
    @pytest.mark.parametrize("battery,expected", [
        (0.9, "3200"), (0.6, "2100"), (0.3, "1050")])
    def test_co_adaptation(self, battery, expected):
        """Snapshotting the Agent co-adapts Site, DepthRule and
        MaxResourcesRule to the same mode."""
        interp = run_source(LISTING2, platform=_Battery(battery))
        assert interp.output == [expected]


#: Listing 3, adapted: method-level mode characterization.
LISTING3 = MODES + """
class Site@mode<?X> {
    List parsedimgs;
    attributor {
        if (parsedimgs.size() > 20) { return full_throttle; }
        if (parsedimgs.size() > 10) { return managed; }
        return energy_saver;
    }
    Site(int imgs) {
        this.parsedimgs = new List();
        int i = 0;
        while (i < imgs) { parsedimgs.add(i); i = i + 1; }
    }
    int crawl() { return 1; }
    @mode<full_throttle> int mediaCrawl() { return 2; }
}

class Agent@mode<?X> {
    attributor { return managed; }
    Agent() { }

    @mode<?Y> int saveImages(Site s)
    attributor {
        if (s.parsedimgs.size() > 20) { return full_throttle; }
        if (s.parsedimgs.size() > 10) { return managed; }
        return energy_saver;
    }
    {
        int written = 0;
        foreach (int i : s.parsedimgs) { written = written + 1; }
        return written;
    }
}

class Driver@mode<managed> {
    int save(Agent@mode<managed> a, Site s) { return a.saveImages(s); }
}

class Main {
    void main() {
        Agent da = new Agent@mode<?>();
        Agent@mode<managed> a = snapshot da [managed, managed];
        Driver d = new Driver();
        Site small = new Site@mode<?>(5);
        Sys.print(d.save(a, small));
        Site big = new Site@mode<?>(30);
        try { Sys.print(d.save(a, big)); }
        catch (EnergyException e) { Sys.print("too hot to save"); }
    }
}
"""


class TestListing3:
    def test_method_attributor_adapts(self):
        # Saving few images is cheap: allowed under a managed agent.
        # Saving many attributes the method full_throttle: the runtime
        # waterfall rejects it from the managed closure.
        interp = run_source(LISTING3)
        assert interp.output == ["5", "too hot to save"]

    def test_media_crawl_static_error_from_low_mode(self):
        source = LISTING3.replace(
            "class Main {",
            """
            class Low@mode<energy_saver> {
                int go(Site s) { return s.mediaCrawl(); }
            }
            class Main {""")
        with pytest.raises(WaterfallError):
            check_program(source)


class TestTemperatureProgram:
    """An E3-style temperature-casing program in the ENT language."""

    SOURCE = """
    modes { overheating <= hot; hot <= safe; }
    class Sleeper@mode<?X> {
        attributor {
            double t = Ext.temperature();
            if (t < 60.0) { return safe; }
            if (t <= 65.0) { return hot; }
            return overheating;
        }
        Sleeper() { }
        mcase<int> interval = mcase{
            overheating: 1000; hot: 250; safe: 0;
        };
    }
    class Main {
        void main() {
            int i = 0;
            while (i < 5) {
                Sys.work(1000);
                Sleeper ds = new Sleeper@mode<?>();
                Sleeper s = snapshot ds;
                int ms = s.interval;
                if (ms > 0) { Sys.sleep(ms); }
                i = i + 1;
            }
            Sys.print("done");
        }
    }
    """

    def test_runs_on_real_platform(self):
        from repro.platform import SystemA
        interp = run_source(self.SOURCE, platform=SystemA(seed=1))
        assert interp.output == ["done"]
        assert interp.stats.snapshots == 5
