"""Parallel evaluation must be bit-identical to serial evaluation.

Each episode constructs its own platform and runtime from an explicit
seed, so fanning the grids out across a process pool must not change a
single cell — these tests pin that guarantee for the figure-8 grid,
the drain sweep, figure 11, and the repeat protocol.
"""

from repro.eval import (battery_drain_run, drain_sweep, figure8, figure11,
                        repeated_energies)
from repro.eval.parallel import EpisodeTask

BENCHMARKS = ["jspider", "crypto"]


class TestFigure8Determinism:
    def test_jobs4_bit_identical_to_serial(self):
        serial = figure8(system="A", benchmarks=BENCHMARKS)
        parallel = figure8(system="A", benchmarks=BENCHMARKS, jobs=4)
        assert [row.benchmark for row in serial] == \
            [row.benchmark for row in parallel]
        for srow, prow in zip(serial, parallel):
            assert set(srow.cells) == set(prow.cells)
            for key, episode in srow.cells.items():
                assert prow.cells[key] == episode, (srow.benchmark, key)

    def test_row_order_follows_enumeration(self):
        parallel = figure8(system="A", benchmarks=BENCHMARKS[::-1], jobs=2)
        assert [row.benchmark for row in parallel] == BENCHMARKS[::-1]


class TestDrainSweepEquivalence:
    def test_sweep_matches_serial_runs(self):
        kwargs = dict(iterations=6, battery_scale=0.003, seed=2)
        parallel = drain_sweep(BENCHMARKS, systems=("A",), jobs=2,
                               **kwargs)
        serial = [battery_drain_run(name, "A", **kwargs)
                  for name in BENCHMARKS]
        assert parallel == serial

    def test_sweep_runs_stay_monotone(self):
        for run in drain_sweep(["jspider"], systems=("A",),
                               iterations=6, battery_scale=0.003,
                               jobs=2):
            assert run.monotone_downward()


class TestFigure11Determinism:
    def test_jobs_equivalent_traces(self):
        serial = figure11(benchmarks=["sunflow"], units=6)
        parallel = figure11(benchmarks=["sunflow"], units=6, jobs=2)
        assert serial == parallel


class TestRepeatedEnergiesFanOut:
    def test_task_fanout_matches_serial_and_count(self):
        task = EpisodeTask(
            kind="e1", key=("jspider",), benchmark="jspider",
            params=dict(system="A", boot_mode="managed",
                        workload_mode="full_throttle"))
        serial = repeated_energies(task, times=4, discard_first=True)
        parallel = repeated_energies(task, times=4, discard_first=True,
                                     jobs=2)
        assert serial == parallel
        assert len(serial) == 4
