"""Unit tests for the embedded ENT runtime (repro.runtime.embedded)."""

import pytest

from repro.core.errors import EnergyException, EntError
from repro.core.modes import Mode
from repro.runtime import EntRuntime, get_tag, mode_of


@pytest.fixture
def rt():
    return EntRuntime.standard()


def make_site(rt):
    @rt.dynamic
    class Site:
        depth = rt.mcase({"energy_saver": 1, "managed": 2,
                          "full_throttle": 3})

        def __init__(self, n):
            self.n = n

        def attributor(self):
            if self.n > 200:
                return "full_throttle"
            if self.n > 50:
                return "managed"
            return "energy_saver"

        def crawl(self):
            return self.depth

    return Site


class TestDecorators:
    def test_dynamic_requires_attributor(self, rt):
        with pytest.raises(EntError):
            @rt.dynamic
            class Bad:
                pass

    def test_static_rejects_attributor(self, rt):
        with pytest.raises(EntError):
            @rt.static("managed")
            class Bad:
                def attributor(self):
                    return "managed"

    def test_dynamic_instance_starts_unmoded(self, rt):
        Site = make_site(rt)
        site = Site(10)
        assert mode_of(site) is None
        assert get_tag(site).dynamic

    def test_static_instance_has_fixed_mode(self, rt):
        @rt.static("managed")
        class Fixed:
            pass

        assert mode_of(Fixed()) == Mode("managed")

    def test_static_unknown_mode_rejected(self, rt):
        with pytest.raises(Exception):
            rt.static("warp")(type("X", (), {}))


class TestSnapshot:
    def test_attributor_decides(self, rt):
        Site = make_site(rt)
        assert mode_of(rt.snapshot(Site(300))) == Mode("full_throttle")
        assert mode_of(rt.snapshot(Site(100))) == Mode("managed")
        assert mode_of(rt.snapshot(Site(10))) == Mode("energy_saver")

    def test_bad_check(self, rt):
        Site = make_site(rt)
        with pytest.raises(EnergyException):
            rt.snapshot(Site(300), upper="managed")

    def test_lower_bound(self, rt):
        Site = make_site(rt)
        with pytest.raises(EnergyException):
            rt.snapshot(Site(10), lower="managed")

    def test_snapshot_unmanaged_rejected(self, rt):
        with pytest.raises(EntError):
            rt.snapshot(object())

    def test_lazy_then_copy(self, rt):
        Site = make_site(rt)
        site = Site(100)
        first = rt.snapshot(site)
        assert first is site          # lazy in-place tag
        second = rt.snapshot(site)
        assert second is not site     # second snapshot copies
        assert rt.stats.lazy_tags == 1
        assert rt.stats.copies == 1

    def test_eager_copy(self):
        rt = EntRuntime.standard(lazy_copy=False)
        Site = make_site(rt)
        site = Site(100)
        snapped = rt.snapshot(site)
        assert snapped is not site
        assert mode_of(site) is None      # original stays dynamic

    def test_monotonic_modes(self):
        rt = EntRuntime.standard(lazy_copy=False)
        Site = make_site(rt)
        site = Site(100)
        a = rt.snapshot(site)
        site.n = 1000
        b = rt.snapshot(site)
        assert mode_of(a) == Mode("managed")
        assert mode_of(b) == Mode("full_throttle")

    def test_silent_ignores_bad_check(self):
        rt = EntRuntime.standard(silent=True)
        Site = make_site(rt)
        snapped = rt.snapshot(Site(300), upper="managed")
        # Tagging remains in place, as in the paper's silent build.
        assert mode_of(snapped) == Mode("full_throttle")

    def test_attributor_must_return_mode(self, rt):
        @rt.dynamic
        class Weird:
            def attributor(self):
                return 42

        with pytest.raises(EntError):
            rt.snapshot(Weird())


class TestWaterfall:
    def test_messaging_unmoded_dynamic_rejected(self, rt):
        Site = make_site(rt)
        with pytest.raises(EnergyException):
            Site(10).crawl()

    def test_waterfall_violation(self, rt):
        Site = make_site(rt)
        heavy = rt.snapshot(Site(300))
        with rt.booted("energy_saver"):
            with pytest.raises(EnergyException):
                heavy.crawl()

    def test_downhill_ok(self, rt):
        Site = make_site(rt)
        light = rt.snapshot(Site(10))
        with rt.booted("full_throttle"):
            assert light.crawl() == 1

    def test_booted_from_object(self, rt):
        Site = make_site(rt)
        agent = rt.snapshot(Site(100))
        with rt.booted(agent) as mode:
            assert mode == Mode("managed")

    def test_booted_from_unmoded_rejected(self, rt):
        Site = make_site(rt)
        with pytest.raises(EnergyException):
            with rt.booted(Site(10)):
                pass

    def test_self_call_allowed(self, rt):
        @rt.dynamic
        class SelfCaller:
            def attributor(self):
                return "full_throttle"

            def outer(self):
                return self.inner()

            def inner(self):
                return 42

        obj = rt.snapshot(SelfCaller())
        # full_throttle object messaged from TOP: fine; its self-call
        # to inner() must not re-check.
        assert obj.outer() == 42

    def test_mode_override(self, rt):
        @rt.dynamic
        class Site:
            def attributor(self):
                return "energy_saver"

            @rt.mode_override("full_throttle")
            def media_crawl(self):
                return "expensive"

        site = rt.snapshot(Site())
        with rt.booted("energy_saver"):
            with pytest.raises(EnergyException):
                site.media_crawl()
        with rt.booted("full_throttle"):
            assert site.media_crawl() == "expensive"

    def test_closure_mode_switches_to_receiver(self, rt):
        Site = make_site(rt)
        observed = []

        @rt.dynamic
        class Agent:
            def attributor(self):
                return "managed"

            def work(self):
                observed.append(rt.current_mode)
                return 1

        agent = rt.snapshot(Agent())
        with rt.booted("full_throttle"):
            agent.work()
        assert observed == [Mode("managed")]

    def test_silent_suppresses_waterfall(self):
        rt = EntRuntime.standard(silent=True)
        Site = make_site(rt)
        heavy = rt.snapshot(Site(300))
        with rt.booted("energy_saver"):
            assert heavy.crawl() == 3


class TestModeCases:
    def test_descriptor_eliminates_on_instance_mode(self, rt):
        Site = make_site(rt)
        site = rt.snapshot(Site(300))
        assert site.crawl() == 3

    def test_elimination_on_unmoded_rejected(self, rt):
        Site = make_site(rt)
        with pytest.raises(EnergyException):
            _ = Site(10).depth

    def test_coverage_required(self, rt):
        with pytest.raises(EntError):
            rt.mcase({"managed": 1})

    def test_default_branch(self, rt):
        case = rt.mcase({"managed": 2}, default=0, has_default=True)
        assert case.select(Mode("managed")) == 2
        assert case.select(Mode("energy_saver")) == 0

    def test_explicit_select(self, rt):
        case = rt.mcase({"energy_saver": 1, "managed": 2,
                         "full_throttle": 3})
        assert case.select(Mode("full_throttle")) == 3

    def test_for_object(self, rt):
        Site = make_site(rt)
        site = rt.snapshot(Site(100))
        case = rt.mcase({"energy_saver": "l", "managed": "m",
                         "full_throttle": "h"})
        assert case.for_object(site) == "m"

    def test_class_access_returns_descriptor(self, rt):
        Site = make_site(rt)
        from repro.runtime.embedded import ModeCase
        assert isinstance(Site.depth, ModeCase)


class TestBaseline:
    def test_baseline_skips_checks(self):
        rt = EntRuntime.standard(baseline=True)
        Site = make_site(rt)
        site = rt.snapshot(Site(300), upper="managed")  # no bad check
        with rt.booted("energy_saver"):
            assert site.crawl() == 3  # no waterfall check either
        assert rt.stats.bound_checks == 0

    def test_stats_track_checks(self, rt):
        Site = make_site(rt)
        site = rt.snapshot(Site(100))
        with rt.booted("full_throttle"):
            site.crawl()
        assert rt.stats.snapshots == 1
        assert rt.stats.bound_checks == 1
        assert rt.stats.dfall_checks >= 1
        assert rt.stats.mcase_elims >= 1


class TestThermalRuntime:
    def test_thermal_lattice(self):
        rt = EntRuntime.thermal()
        assert rt.lattice.leq(Mode("overheating"), Mode("safe"))
        assert rt.lattice.leq(Mode("hot"), Mode("safe"))


class TestEmbeddedProfiling:
    def test_profiler_counts_symbolic_sites(self):
        from repro.obs.prof import Profiler

        profiler = Profiler("embedded")
        rt = EntRuntime.standard(profiler=profiler)
        Site = make_site(rt)
        site = rt.snapshot(Site(100))
        with rt.booted("full_throttle"):
            site.crawl()
        profiler.finish()
        profile = profiler.profile
        assert profile.check_sites["snapshot_bound@Site"]["executed"] \
            == rt.stats.bound_checks
        assert profile.check_sites["dfall@Site.crawl"]["executed"] >= 1
        assert profile.call_sites["call@Site.crawl"]["calls"] == 1
        assert "Site.crawl" in " ".join(profile.stack_time)

    def test_profiling_does_not_change_results_or_stats(self):
        from repro.obs.prof import Profiler

        def episode(profiler=None):
            rt = EntRuntime.standard(profiler=profiler)
            Site = make_site(rt)
            site = rt.snapshot(Site(100))
            with rt.booted("full_throttle"):
                result = site.crawl()
            return result, rt.stats.as_dict()

        plain = episode()
        profiler = Profiler("embedded")
        profiled = episode(profiler)
        profiler.finish()
        assert plain == profiled

    def test_default_runtime_uses_null_profiler(self):
        from repro.obs.prof import NULL_PROFILER

        assert EntRuntime.standard().profiler is NULL_PROFILER
