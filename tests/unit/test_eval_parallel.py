"""Unit tests for the process-pool episode executor."""

import os

import pytest

from repro.eval.parallel import EpisodeTask, resolve_jobs, run_episodes
from repro.eval.runner import run_e1_episode, run_e2_episode
from repro.obs.tracer import Tracer
from repro.workloads import ES, FT, MG, get_workload


def _e1_task(key, boot, workload_mode, seed=0, benchmark="jspider"):
    return EpisodeTask(
        kind="e1", key=key, benchmark=benchmark,
        params=dict(system="A", boot_mode=boot,
                    workload_mode=workload_mode, seed=seed))


class TestEpisodeTask:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown episode kind"):
            EpisodeTask(kind="e9", key=("x",), benchmark="jspider")

    def test_with_seed_extends_key_and_params(self):
        task = _e1_task(("a",), FT, MG)
        pinned = task.with_seed(7)
        assert pinned.key == ("a", 7)
        assert pinned.params["seed"] == 7
        assert task.params["seed"] == 0  # original untouched
        assert pinned.kind == task.kind
        assert pinned.benchmark == task.benchmark


class TestResolveJobs:
    def test_serial_defaults(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_explicit_count(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestRunEpisodes:
    def test_empty_task_list_returns_empty_aggregate(self):
        # Regression: an empty batch must short-circuit before the
        # pool path, which would compute min(workers, 0) and ask
        # ProcessPoolExecutor for max_workers=0 (a ValueError).
        assert run_episodes([]) == {}
        assert run_episodes([], jobs=8) == {}
        assert run_episodes(iter([]), jobs=0) == {}

    def test_empty_task_list_leaves_tracer_untouched(self):
        tracer = Tracer(capacity=16)
        assert run_episodes([], jobs=4, tracer=tracer) == {}
        assert list(tracer.events()) == []

    def test_duplicate_keys_rejected(self):
        tasks = [_e1_task(("dup",), FT, MG), _e1_task(("dup",), FT, ES)]
        with pytest.raises(ValueError, match="duplicate"):
            run_episodes(tasks)

    def test_serial_matches_direct_runner_calls(self):
        tasks = [_e1_task(("a",), FT, MG), _e1_task(("b",), MG, FT)]
        results = run_episodes(tasks)
        workload = get_workload("jspider")
        assert results[("a",)] == run_e1_episode(workload, "A", FT, MG)
        assert results[("b",)] == run_e1_episode(workload, "A", MG, FT)

    def test_parallel_matches_serial_mixed_batch(self):
        tasks = [
            _e1_task(("e1", "a"), FT, MG),
            _e1_task(("e1", "b"), ES, FT, seed=3),
            EpisodeTask(kind="e2", key=("e2", "a"), benchmark="crypto",
                        params=dict(system="A", boot_mode=MG,
                                    workload_mode=FT, seed=1)),
            EpisodeTask(kind="e3", key=("e3", "a"), benchmark="sunflow",
                        params=dict(variant="ent", seed=0, units=4)),
        ]
        serial = run_episodes(tasks)
        parallel = run_episodes(tasks, jobs=2)
        assert serial == parallel
        assert set(serial) == {t.key for t in tasks}

    def test_e2_worker_runs_real_episode(self):
        task = EpisodeTask(kind="e2", key=("k",), benchmark="crypto",
                           params=dict(system="A", boot_mode=ES,
                                       workload_mode=FT, seed=0))
        result = run_episodes([task], jobs=2)[("k",)]
        expected = run_e2_episode(get_workload("crypto"), "A", ES,
                                  workload_mode=FT, seed=0)
        assert result == expected

    def test_tracer_rings_merge_identically(self):
        tasks = [_e1_task(("a",), FT, MG), _e1_task(("b",), MG, FT)]
        serial_tracer = Tracer()
        run_episodes(tasks, tracer=serial_tracer)
        parallel_tracer = Tracer()
        run_episodes(tasks, jobs=2, tracer=parallel_tracer)
        serial_events = [e.as_dict() for e in serial_tracer.events()]
        parallel_events = [e.as_dict() for e in parallel_tracer.events()]
        assert serial_events == parallel_events
        assert parallel_tracer.dropped == serial_tracer.dropped

    def test_worker_ring_overflow_propagates_dropped(self):
        tasks = [_e1_task(("a",), FT, MG), _e1_task(("b",), FT, MG, seed=1)]
        tracer = Tracer(capacity=4)
        run_episodes(tasks, jobs=2, tracer=tracer, trace_capacity=4)
        assert len(tracer.events()) == 4
        assert tracer.dropped > 0

    def test_profiles_merge_identically_to_serial(self):
        from repro.obs.prof import Profiler

        tasks = [_e1_task(("a",), FT, MG), _e1_task(("b",), MG, FT),
                 _e1_task(("c",), FT, MG, seed=1)]
        serial = Profiler("embedded")
        run_episodes(tasks, profiler=serial)
        serial.finish()
        parallel = Profiler("embedded")
        run_episodes(tasks, jobs=2, profiler=parallel)
        parallel.finish()
        assert parallel.profile.check_sites == serial.profile.check_sites
        serial_calls = {sid: entry["calls"] for sid, entry
                        in serial.profile.call_sites.items()}
        parallel_calls = {sid: entry["calls"] for sid, entry
                          in parallel.profile.call_sites.items()}
        assert parallel_calls == serial_calls
        # Label *counts* (not times) are scheduling-independent too.
        serial_counts = {name: h.count for name, h
                         in serial.profile.registry.histograms.items()}
        parallel_counts = {name: h.count for name, h
                           in parallel.profile.registry.histograms.items()}
        assert parallel_counts == serial_counts

    def test_profile_merge_is_submission_order_independent(self):
        from repro.obs.prof import Profiler

        tasks = [_e1_task(("a",), FT, MG), _e1_task(("b",), MG, FT)]
        forward = Profiler("embedded")
        run_episodes(tasks, jobs=2, profiler=forward)
        backward = Profiler("embedded")
        run_episodes(list(reversed(tasks)), jobs=2, profiler=backward)
        assert forward.profile.check_sites == backward.profile.check_sites
        assert forward.profile.call_sites == backward.profile.call_sites

    def test_disabled_profiler_ships_no_profiles(self):
        tasks = [_e1_task(("a",), FT, MG), _e1_task(("b",), MG, FT)]
        results = run_episodes(tasks, jobs=2)
        assert set(results) == {("a",), ("b",)}
