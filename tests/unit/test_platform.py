"""Unit tests for the platform substrate: clock, battery, thermal, CPU,
meters, and the three systems."""

import math

import pytest

from repro.platform import (Battery, Cpu, EnergyLedger, INTEL_I5,
                            OndemandGovernor, PerformanceGovernor,
                            PI2_BCM2836, RaplMeter, SimClock, SystemA,
                            SystemB, SystemC, ThermalModel, WattsUpMeter,
                            make_platform)


class TestClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_listener(self):
        clock = SimClock()
        events = []
        clock.subscribe(lambda start, dur: events.append((start, dur)))
        clock.advance(2.0)
        clock.advance(0.0)  # zero advance: no event
        assert events == [(0.0, 2.0)]


class TestBattery:
    def test_drain(self):
        battery = Battery(100.0)
        battery.drain(25.0)
        assert battery.fraction() == pytest.approx(0.75)

    def test_never_negative(self):
        battery = Battery(10.0)
        battery.drain(50.0)
        assert battery.fraction() == 0.0
        assert battery.empty

    def test_set_fraction(self):
        battery = Battery(100.0)
        battery.set_fraction(0.4)
        assert battery.fraction() == pytest.approx(0.4)

    def test_script_overrides_queries(self):
        battery = Battery(100.0)
        battery.use_script(lambda t: 0.9 - 0.1 * t)
        assert battery.fraction(0.0) == pytest.approx(0.9)
        assert battery.fraction(2.0) == pytest.approx(0.7)
        # Clamped to [0, 1].
        assert battery.fraction(100.0) == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Battery(-5.0)
        with pytest.raises(ValueError):
            Battery(10.0, fraction=1.5)


class TestThermal:
    def test_steady_state(self):
        model = ThermalModel(ambient_c=35.0, r_th_c_per_w=1.2)
        assert model.steady_state(25.0) == pytest.approx(65.0)

    def test_heats_towards_steady(self):
        model = ThermalModel(ambient_c=35.0, r_th_c_per_w=1.2, tau_s=25.0)
        model.step(25.0, 10.0)
        assert 35.0 < model.temperature_c < 65.0
        model.step(25.0, 1000.0)
        assert model.temperature_c == pytest.approx(65.0, abs=0.01)

    def test_cools_when_idle(self):
        model = ThermalModel(ambient_c=35.0, initial_c=70.0)
        model.step(0.0, 5.0)
        assert model.temperature_c < 70.0

    def test_exact_exponential(self):
        model = ThermalModel(ambient_c=30.0, r_th_c_per_w=1.0, tau_s=10.0)
        model.step(20.0, 10.0)  # one time constant towards 50
        expected = 50.0 + (30.0 - 50.0) * math.exp(-1.0)
        assert model.temperature_c == pytest.approx(expected)

    def test_step_size_independence(self):
        a = ThermalModel(tau_s=20.0)
        b = ThermalModel(tau_s=20.0)
        a.step(20.0, 10.0)
        for _ in range(100):
            b.step(20.0, 0.1)
        assert a.temperature_c == pytest.approx(b.temperature_c)

    def test_time_to_reach(self):
        model = ThermalModel(ambient_c=35.0, r_th_c_per_w=1.2, tau_s=25.0)
        t = model.time_to_reach(25.0, 60.0)
        model.step(25.0, t)
        assert model.temperature_c == pytest.approx(60.0, abs=0.01)

    def test_time_to_reach_unreachable(self):
        model = ThermalModel(ambient_c=35.0, r_th_c_per_w=1.0)
        assert model.time_to_reach(5.0, 90.0) == math.inf


class TestCpu:
    def test_execute_duration(self):
        cpu = Cpu(INTEL_I5, governor="performance")
        duration, power = cpu.execute(12_000.0)  # 12e9 ops
        # 3 GHz * 4 ipc = 12e9 ops/s -> 1 second.
        assert duration == pytest.approx(1.0)
        assert power > INTEL_I5.idle_w

    def test_power_increases_with_level(self):
        assert INTEL_I5.busy_power(0) < INTEL_I5.busy_power(3)

    def test_ondemand_ramps_up(self):
        governor = OndemandGovernor(levels=4)
        assert governor.select_level() == 0
        governor.observe(True, 2.0)
        assert governor.select_level() == 3

    def test_ondemand_decays(self):
        governor = OndemandGovernor(levels=4)
        governor.observe(True, 2.0)
        governor.observe(False, 5.0)
        assert governor.select_level() < 3

    def test_performance_always_max(self):
        governor = PerformanceGovernor(levels=4)
        governor.observe(False, 100.0)
        assert governor.select_level() == 3

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            INTEL_I5.__class__(name="bad", freqs_ghz=(2.0, 1.0),
                               voltages=(1.0, 1.0), ipc=1, idle_w=1,
                               dyn_coeff=1)

    def test_pi_slower_than_i5(self):
        assert (PI2_BCM2836.ops_per_second(PI2_BCM2836.levels - 1)
                < INTEL_I5.ops_per_second(INTEL_I5.levels - 1))


class TestMeters:
    def test_window(self):
        ledger = EnergyLedger()
        meter = RaplMeter(ledger)
        meter.noise_rel = 0.0
        meter.begin()
        ledger.add("cpu_j", 10.0)
        assert meter.end() == pytest.approx(10.0)

    def test_rapl_sees_only_cpu(self):
        ledger = EnergyLedger()
        meter = RaplMeter(ledger)
        meter.noise_rel = 0.0
        meter.begin()
        ledger.add("cpu_j", 10.0)
        ledger.add("peripheral_j", 5.0)
        assert meter.end() == pytest.approx(10.0)

    def test_wattsup_sees_everything(self):
        ledger = EnergyLedger()
        meter = WattsUpMeter(ledger)
        meter.noise_rel = 0.0
        meter.begin()
        ledger.add("cpu_j", 10.0)
        ledger.add("peripheral_j", 5.0)
        ledger.add("display_j", 1.0)
        assert meter.end() == pytest.approx(16.0)

    def test_unstarted_window_rejected(self):
        with pytest.raises(RuntimeError):
            RaplMeter(EnergyLedger()).end()

    def test_noise_is_seeded(self):
        import random
        ledger = EnergyLedger()
        ledger.add("cpu_j", 100.0)
        readings = []
        for _ in range(2):
            meter = RaplMeter(EnergyLedger(), rng=random.Random(3))
            meter.begin()
            meter._ledger.add("cpu_j", 100.0)
            readings.append(meter.end())
        assert readings[0] == readings[1]


class TestSystems:
    def test_factory(self):
        assert isinstance(make_platform("A"), SystemA)
        assert isinstance(make_platform("b"), SystemB)
        assert isinstance(make_platform("C"), SystemC)
        with pytest.raises(ValueError):
            make_platform("Z")

    def test_work_consumes_energy_and_time(self):
        platform = SystemA(seed=1)
        platform.cpu_work(1000.0)
        assert platform.now() > 0
        assert platform.energy_total_j() > 0

    def test_sleep_is_cheaper_than_work(self):
        busy = SystemA(seed=1)
        busy.cpu_work(12_000.0)
        duration = busy.now()
        idle = SystemA(seed=1)
        idle.sleep(duration)
        assert idle.energy_total_j() < busy.energy_total_j()

    def test_work_heats_sleep_cools(self):
        platform = SystemA(seed=1)
        for _ in range(20):
            platform.cpu_work(12_000.0)
        hot = platform.cpu_temperature()
        assert hot > 45.0
        platform.sleep(60.0)
        assert platform.cpu_temperature() < hot

    def test_battery_drains(self):
        platform = SystemB(seed=1, battery_fraction=1.0)
        platform.cpu_work(50_000.0)
        assert platform.battery_fraction() < 1.0

    def test_io_and_net_accounted(self):
        platform = SystemA(seed=1)
        platform.io_bytes(1.0e6)
        platform.net_bytes(1.0e6)
        assert platform.ledger.io_j > 0
        assert platform.ledger.net_j > 0
        # Network is slower than the SSD.
        assert platform.ledger.net_j > platform.ledger.io_j

    def test_peak_powers_sane(self):
        # Laptop package tens of watts; Pi and phone a few watts.
        assert 20 < INTEL_I5.max_power() < 45
        assert 2 < PI2_BCM2836.max_power() < 5

    def test_run_jitter_seeded(self):
        a1 = SystemA(seed=4)
        a2 = SystemA(seed=4)
        a1.cpu_work(1000.0)
        a2.cpu_work(1000.0)
        assert a1.now() == pytest.approx(a2.now())

    def test_run_jitter_varies_across_seeds(self):
        durations = set()
        for seed in range(6):
            platform = SystemA(seed=seed)
            platform.cpu_work(10_000.0)
            durations.add(round(platform.now(), 9))
        assert len(durations) > 1

    def test_temperature_trace_recorded(self):
        platform = SystemA(seed=1)
        platform.cpu_work(5000.0)
        assert len(platform.temperature_trace) > 1
        times = [t for t, _ in platform.temperature_trace]
        assert times == sorted(times)


class TestReran:
    def test_recording_script(self):
        from repro.platform import Recording
        rec = Recording.script([(1.0, "tap", "a"), (0.5, "type", "b")])
        assert len(rec) == 2
        assert rec.duration_s == pytest.approx(1.5)

    def test_replay_jitters_but_preserves_order(self):
        from repro.platform import Recording, ReranReplayer
        rec = Recording.script([(1.0, "tap", "a"), (1.0, "tap", "b")])
        platform = SystemC(seed=2)
        replayer = ReranReplayer(platform, seed=2)
        events = [e.payload for e in replayer.replay(rec)]
        assert events == ["a", "b"]
        assert platform.sleep_total_s > 0

    def test_replay_seeded(self):
        from repro.platform import Recording, ReranReplayer
        rec = Recording.script([(1.0, "tap", "a")] * 5)
        def total(seed):
            platform = SystemC(seed=1)
            list(ReranReplayer(platform, seed=seed).replay(rec))
            return platform.sleep_total_s
        assert total(3) == pytest.approx(total(3))
        assert total(3) != pytest.approx(total(4))
