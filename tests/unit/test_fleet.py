"""Unit tests for the fleet-scale device simulation service."""

import json

import pytest

from repro.cli import main
from repro.fleet import FleetSpec, device_params, run_fleet
from repro.fleet.service import FleetReport, _fold, partition
from repro.fleet.shard import ShardTask, run_shard
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry


SPEC = FleetSpec(devices=120, seed=11)


class TestPartition:
    def test_covers_population_contiguously(self):
        for devices in (0, 1, 7, 100):
            for shards in (1, 3, 8, 200):
                ranges = partition(devices, shards)
                flat = [i for start, stop in ranges
                        for i in range(start, stop)]
                assert flat == list(range(devices))

    def test_sizes_differ_by_at_most_one(self):
        sizes = [stop - start for start, stop in partition(100, 7)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 100

    def test_never_more_shards_than_devices(self):
        assert len(partition(3, 8)) == 3
        assert partition(0, 8) == [(0, 0)]


class TestDeviceParams:
    def test_partition_independent_derivation(self):
        # The whole determinism story rests on this: device i's
        # parameters do not depend on which shard materializes them.
        a = device_params(SPEC, 42)
        b = device_params(SPEC, 42)
        assert (a.system, a.profile, a.archetype, a.load_k,
                a.platform_seed, a.start_fraction) == \
               (b.system, b.profile, b.archetype, b.load_k,
                b.platform_seed, b.start_fraction)
        assert a.stream.getstate() == b.stream.getstate()

    def test_seed_changes_population(self):
        other = FleetSpec(devices=120, seed=12)
        assert any(
            device_params(SPEC, i).platform_seed
            != device_params(other, i).platform_seed
            for i in range(20))

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="devices"):
            FleetSpec(devices=-1)
        with pytest.raises(ValueError, match="steps"):
            FleetSpec(devices=1, steps=0)
        with pytest.raises(ValueError, match="non-empty"):
            FleetSpec(devices=1, system_mix=())


class TestAggregateInvariance:
    def test_shard_count_invariant(self):
        digests = [run_fleet(SPEC, shards=k).aggregate_digest()
                   for k in (1, 2, 3)]
        assert digests[0] == digests[1] == digests[2]

    def test_arrival_order_invariant(self):
        # Fold the same shard results in deliberately shuffled orders;
        # every aggregate is integer-exact, so the fold is exactly
        # commutative.
        tasks = [ShardTask(spec=SPEC, shard_index=i, start=start,
                           stop=stop)
                 for i, (start, stop) in enumerate(partition(120, 4))]
        results = [run_shard(task) for task in tasks]
        digests = []
        for order in ([0, 1, 2, 3], [3, 1, 0, 2], [2, 3, 1, 0]):
            report = FleetReport(spec=SPEC, engine="batched", shards=4)
            for index in order:
                _fold(report, results[index])
            digests.append(report.aggregate_digest())
        assert digests[0] == digests[1] == digests[2]

    def test_engine_differential(self):
        # The batched engine's only job is to amortize construction;
        # its aggregates must equal the fresh-objects reference.
        batched = run_fleet(SPEC, shards=1, engine="batched")
        embedded = run_fleet(SPEC, shards=1, engine="embedded")
        assert batched.aggregate_digest() == embedded.aggregate_digest()

    def test_devices_and_steps_counted(self):
        report = run_fleet(SPEC, shards=1)
        assert report.devices == 120
        counters = report.registry.counters
        assert counters["fleet.devices"].value == 120
        assert counters["fleet.steps"].value <= 120 * SPEC.steps
        assert counters["fleet.pushes"].value >= \
            counters["fleet.violations"].value

    def test_empty_fleet(self):
        report = run_fleet(FleetSpec(devices=0), shards=4)
        assert report.devices == 0
        assert report.aggregate_digest()["counters"] == {}

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown fleet engine"):
            run_fleet(SPEC, engine="warp")
        with pytest.raises(ValueError, match="unknown fleet engine"):
            run_shard(ShardTask(spec=SPEC, shard_index=0, start=0,
                                stop=1, engine="warp"))


class TestFleetReport:
    def test_render_mentions_key_aggregates(self):
        report = run_fleet(FleetSpec(devices=30, seed=3), shards=1)
        text = report.render()
        assert "30 devices" in text
        assert "violations" in text
        assert "mode dwell" in text

    def test_as_dict_roundtrips_through_json(self):
        report = run_fleet(FleetSpec(devices=10, seed=3), shards=1)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["devices"] == 10
        assert payload["metrics"]["counters"]["fleet.devices"] == 10

    def test_profile_check_sites_merge(self):
        report = run_fleet(SPEC, shards=3)
        sites = report.profile.check_sites
        assert sites["dfall@FleetUplink.push"]["executed"] == \
            report.registry.counters["fleet.runtime.dfall_checks"].value


class TestFleetCli:
    def test_digest_invariant_across_shards(self, capsys):
        assert main(["fleet", "run", "--devices", "60", "--seed", "9",
                     "--shards", "1", "--digest"]) == 0
        one = capsys.readouterr().out
        assert main(["fleet", "run", "--devices", "60", "--seed", "9",
                     "--shards", "2", "--digest"]) == 0
        two = capsys.readouterr().out
        assert one == two
        assert json.loads(one)["counters"]["fleet.devices"] == 60

    def test_json_report(self, capsys):
        assert main(["fleet", "run", "--devices", "20", "--steps", "4",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["devices"] == 20
        assert payload["engine"] == "batched"

    def test_metrics_out_prometheus(self, tmp_path, capsys):
        out = tmp_path / "fleet.prom"
        assert main(["fleet", "run", "--devices", "25",
                     "--metrics-out", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("# TYPE repro_counter counter")
        assert 'repro_counter{name="fleet.devices"} 25' in text
        assert 'repro_histogram_bucket{name="fleet.device_energy_uj"' \
            in text
        # Every histogram ends with the +Inf bucket equal to _count.
        assert 'le="+Inf"} 25' in text


class TestPrometheusEscaping:
    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter('weird"name\\with\nnasties').inc(3)
        text = render_prometheus(registry)
        assert ('repro_counter{name="weird\\"name\\\\with\\nnasties"} 3'
                in text)
        assert "\n " not in text  # no raw newline leaked into a label

    def test_fleet_registry_renders_cleanly(self):
        report = run_fleet(FleetSpec(devices=15, seed=2), shards=1)
        text = render_prometheus(report.registry)
        for line in text.strip().splitlines():
            assert line.startswith(("#", "repro_")), line
