"""Unit tests for the PR-3 hot-path caches: flattened method tables,
per-call-site inline caches, slot-resolved frames, the dfall memo, and
the ``--no-inline-caches`` escape hatch (see docs/PERFORMANCE.md)."""

import pytest

from repro.lang.interp import Interpreter, InterpOptions, run_source
from repro.lang.typechecker import check_program

HEADER = """
modes { low <= mid; mid <= high; }
"""

POLYMORPHIC = HEADER + """
class Shape@mode<high> {
    Shape() { }
    int area() { return 0; }
    int doubled() { return this.area() * 2; }
}
class Square@mode<high> extends Shape@mode<high> {
    int side;
    Square(int side) { this.side = side; }
    int area() { return side * side; }
}
class Circle@mode<high> extends Shape@mode<high> {
    int r;
    Circle(int r) { this.r = r; }
    int area() { return 3 * r * r; }
}
class Main {
    int measure(Shape s) { return s.doubled(); }
    void main() {
        List shapes = [new Square(3), new Circle(2), new Square(5)];
        int total = 0;
        foreach (Shape s : shapes) { total = total + this.measure(s); }
        Sys.print(total);
    }
}
"""


@pytest.mark.parametrize("compile_flag", [False, True],
                         ids=["walk", "compiled"])
@pytest.mark.parametrize("inline_caches", [True, False])
def test_polymorphic_call_site_dispatches_per_class(compile_flag,
                                                    inline_caches):
    """One call site, three receivers of two classes: the inline cache
    must re-dispatch on the receiver's class, never reuse a stale hit."""
    interp = run_source(POLYMORPHIC, options=InterpOptions(
        compile=compile_flag, inline_caches=inline_caches))
    assert interp.output == [str((9 + 12 + 25) * 2)]


OVERRIDE = HEADER + """
class Base@mode<high> {
    Base() { }
    int f() { return 1; }
    int g() { return this.f() + 10; }
}
class Derived@mode<high> extends Base@mode<high> {
    int f() { return 2; }
}
class Main {
    void main() {
        Base b = new Base();
        Derived d = new Derived();
        Sys.print(b.g());
        Sys.print(d.g());
    }
}
"""


@pytest.mark.parametrize("compile_flag", [False, True],
                         ids=["walk", "compiled"])
def test_flattened_method_table_respects_overrides(compile_flag):
    interp = run_source(OVERRIDE,
                        options=InterpOptions(compile=compile_flag))
    assert interp.output == ["11", "12"]


SIBLING_SCOPES = HEADER + """
class Main {
    void main() {
        int sum = 0;
        { int x = 10; sum = sum + x; }
        { int x = 100; sum = sum + x; }
        int i = 0;
        while (i < 3) {
            int x = i * 1000;
            sum = sum + x;
            i = i + 1;
        }
        Sys.print(sum);
    }
}
"""


def test_slot_resolved_frames_keep_sibling_scopes_apart():
    """The compiler resolves each declaration to its own frame slot;
    the same name declared in sibling blocks (and re-declared on every
    loop iteration) must stay independent."""
    walk = run_source(SIBLING_SCOPES, options=InterpOptions(compile=False))
    compiled = run_source(SIBLING_SCOPES,
                          options=InterpOptions(compile=True))
    assert walk.output == compiled.output == [str(10 + 100 + 3000)]


def test_dfall_memo_populates_and_stays_consistent():
    source = HEADER + """
class Hot@mode<high> {
    Hot() { }
    int ping() { return 1; }
}
class Main {
    void main() {
        Hot h = new Hot();
        int i = 0;
        while (i < 25) { h.ping(); i = i + 1; }
    }
}
"""
    checked = check_program(source)
    interp = Interpreter(checked, options=InterpOptions())
    interp.run()
    # Constructor + 25 pings: 26 checks, but only two distinct
    # (guard, sender) pairs — the memo stays tiny no matter how hot
    # the loop is.
    assert interp.stats.dfall_checks == 26
    assert len(interp._dfall_cache) == 2
    assert all(interp._dfall_cache.values())

    uncached = Interpreter(check_program(source),
                           options=InterpOptions(inline_caches=False))
    uncached.run()
    assert uncached.stats.dfall_checks == 26
    assert len(uncached._dfall_cache) == 0


def test_cli_no_inline_caches_flag(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "prog.ent"
    path.write_text(POLYMORPHIC)
    assert main(["run", str(path), "--no-inline-caches"]) == 0
    assert capsys.readouterr().out.strip() == str((9 + 12 + 25) * 2)
