"""Unit tests for the eval-layer data structures, config and renderers."""

import pytest

from repro.eval import (e1_benchmarks, e2_benchmarks, e3_benchmarks,
                        figure6_static_rows, figure7_rows,
                        format_figure7, render_table)
from repro.eval.config import ALL_COMBOS, VIOLATING_COMBOS
from repro.eval.e1 import Figure9Bar
from repro.eval.e2 import Figure10Row
from repro.eval.overhead import (OverheadRow, measure_mechanism_costs,
                                 paired_end_to_end)
from repro.eval.runner import EpisodeResult
from repro.workloads import ES, FT, MG


class TestConfig:
    def test_violating_combos(self):
        assert VIOLATING_COMBOS == [(MG, FT), (ES, MG), (ES, FT)]

    def test_all_combos(self):
        assert len(ALL_COMBOS) == 9
        assert len(set(ALL_COMBOS)) == 9

    def test_benchmark_lists(self):
        assert len(e1_benchmarks("A")) == 6
        assert len(e1_benchmarks("B")) == 5
        assert len(e1_benchmarks("C")) == 4
        assert e1_benchmarks("A") == e2_benchmarks("A")
        assert len(e3_benchmarks()) == 5

    def test_figure7_rows_complete(self):
        rows = figure7_rows()
        assert len(rows) == 15
        for row in rows:
            for key in ("workload", "workload_es", "workload_ft",
                        "qos", "qos_es", "qos_ft"):
                assert row[key], (row["name"], key)

    def test_figure6_static_rows(self):
        rows = figure6_static_rows()
        assert len(rows) == 15
        names = [r["name"] for r in rows]
        assert "jspider" in names and "materiallife" in names


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table(["a", "bbbb"], [["xx", "y"], ["z", "wwwww"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")
        # All rows padded to the same width per column.
        assert lines[2].index("y") == lines[3].index("w")

    def test_format_figure7_contains_settings(self):
        text = format_figure7()
        assert "spidering depth" in text
        assert "anti-aliasing samples" in text
        assert "1920x1080" in text


class TestEpisodeResult:
    def _episode(self, boot, workload_mode):
        return EpisodeResult(
            benchmark="x", system="A", boot_mode=boot,
            workload_mode=workload_mode, qos_mode=MG, silent=False,
            energy_j=1.0, duration_s=1.0, exception_raised=False)

    def test_violating_matrix(self):
        order = [ES, MG, FT]
        for i, boot in enumerate(order):
            for j, wl in enumerate(order):
                assert self._episode(boot, wl).violating == (j > i)


class TestFigure9Bar:
    def test_percent_saved(self):
        bar = Figure9Bar(benchmark="x", system="A", boot_mode=MG,
                         workload_mode=FT, ent_energy_j=60.0,
                         silent_energy_j=100.0, ent_normalized=0.6,
                         silent_normalized=1.0)
        assert bar.percent_saved == pytest.approx(40.0)

    def test_zero_silent_guard(self):
        bar = Figure9Bar(benchmark="x", system="A", boot_mode=MG,
                         workload_mode=FT, ent_energy_j=1.0,
                         silent_energy_j=0.0, ent_normalized=1.0,
                         silent_normalized=0.0)
        assert bar.percent_saved == 0.0


class TestFigure10Row:
    def test_normalization_and_proportionality(self):
        row = Figure10Row(benchmark="x", system="A",
                          energy_j={ES: 50.0, MG: 75.0, FT: 100.0})
        assert row.normalized(ES) == pytest.approx(0.5)
        assert row.percent_saved(MG) == pytest.approx(25.0)
        assert row.energy_proportional

    def test_non_proportional_detected(self):
        row = Figure10Row(benchmark="x", system="A",
                          energy_j={ES: 80.0, MG: 75.0, FT: 100.0})
        assert not row.energy_proportional


class TestOverheadRow:
    def test_overhead_formula(self):
        row = OverheadRow(benchmark="x", description="", systems="A",
                          cloc=1, ent_changes=1, baseline_seconds=1.0,
                          mechanism_seconds=0.005)
        assert row.overhead_percent == pytest.approx(0.5)

    def test_zero_kernel_guard(self):
        row = OverheadRow(benchmark="x", description="", systems="A",
                          cloc=1, ent_changes=1, baseline_seconds=0.0,
                          mechanism_seconds=1.0)
        assert row.overhead_percent == 0.0

    def test_mechanism_costs_positive_and_cached(self):
        a = measure_mechanism_costs()
        b = measure_mechanism_costs()
        assert a is b
        assert a.snapshot_s >= 0
        assert a.message_s >= 0
        assert a.elim_s >= 0
        # The snapshot machinery costs more than an elimination.
        assert a.snapshot_s > a.elim_s

    def test_paired_end_to_end_returns_times(self):
        ent, base = paired_end_to_end("crypto", pairs=2)
        assert ent > 0 and base > 0
