"""Unit tests for the cross-engine profiler (``repro.obs.prof``)."""

import json
import pickle

import pytest

from repro.obs.prof import (NULL_PROFILER, PROFILE_FORMATS, NullProfiler,
                            Profile, Profiler, collapsed_stacks,
                            energy_by_label, ic_class,
                            profile_chrome_trace, render_profile, site_id,
                            write_profile)


class FakeSpan:
    def __init__(self, line, column):
        self.line = line
        self.column = column


def make_profiler(engine="vm", step=1.0):
    """A profiler on a deterministic clock advancing ``step`` per read."""
    clock = {"t": 0.0}

    def now():
        clock["t"] += step
        return clock["t"]

    return Profiler(engine, clock=now)


class TestSiteId:
    def test_spanful(self):
        assert site_id("dfall", FakeSpan(12, 4)) == "dfall@12:4"

    def test_spanless(self):
        assert site_id("dfall", None) == "dfall@?"
        assert site_id("snapshot_bound", object()) == "snapshot_bound@?"


class TestIcClass:
    @pytest.mark.parametrize("entries,expected", [
        (0, "-"), (1, "mono"), (2, "poly"), (3, "poly"),
        (4, "mega"), (10, "mega")])
    def test_classification(self, entries, expected):
        assert ic_class(entries) == expected


class TestProfilerAttribution:
    def test_bump_attributes_to_previous_label(self):
        profiler = make_profiler()
        profiler.bump("op.A")     # t=1: nothing pending yet
        profiler.bump("op.B")     # t=2: A gets 1s
        profiler.bump("op.A")     # t=3: B gets 1s
        profiler.finish()         # t=4: A gets 1s
        profile = profiler.profile
        hists = profile.registry.histograms
        assert hists["op.A"].count == 2
        assert hists["op.A"].total == pytest.approx(2.0)
        assert hists["op.B"].count == 1
        assert hists["op.B"].total == pytest.approx(1.0)
        # Histogram counts are exact execution counts; intervals
        # partition the profiled window.
        assert profile.total_time == pytest.approx(3.0)

    def test_finish_is_idempotent(self):
        profiler = make_profiler()
        profiler.bump("op.A")
        profiler.finish()
        total = profiler.profile.total_time
        profiler.finish()
        assert profiler.profile.total_time == total

    def test_mode_time_keys(self):
        profiler = make_profiler()
        profiler.bump("op.A", "managed")
        profiler.bump("op.A", None)
        profiler.finish()
        mode_time = profiler.profile.mode_time
        assert mode_time[("op.A", "managed")] == pytest.approx(1.0)
        assert mode_time[("op.A", None)] == pytest.approx(1.0)

    def test_push_pop_builds_stack_keys(self):
        profiler = make_profiler()
        profiler.push("Main.main")
        profiler.push("Agent.work")
        profiler.bump("op.ADD")
        profiler.pop()
        profiler.pop()
        profiler.finish()
        profile = profiler.profile
        assert "Main.main;Agent.work" in profile.stack_time
        assert profile.registry.histograms["call.Main.main"].count == 1
        assert profile.registry.histograms["call.Agent.work"].count == 1
        # Popping re-opens the caller's frame under engine.resume.
        assert "engine.resume" in profile.registry.histograms


class TestProfilerSites:
    def test_call_and_ic_miss_counters(self):
        profiler = make_profiler()
        profiler.call("call@3:7", "Agent.work")
        profiler.call("call@3:7", "Agent.work")
        profiler.ic_miss("call@3:7", "Agent.work", 2)
        entry = profiler.profile.call_sites["call@3:7"]
        assert entry == {"name": "Agent.work", "calls": 2,
                         "ic_misses": 1, "ic_entries": 2}

    def test_check_and_elided_counting(self):
        profiler = make_profiler()
        span = FakeSpan(5, 2)
        profiler.check("dfall", span, "es")
        profiler.check("dfall", span, "es")
        profiler.check_elided("dfall", span)
        profiler.check_elided("snapshot_bound", None)
        profiler.finish()
        sites = profiler.profile.check_sites
        assert sites["dfall@5:2"]["executed"] == 2
        assert sites["dfall@5:2"]["elided"] == 1
        assert sites["snapshot_bound@?"]["executed"] == 0
        assert sites["snapshot_bound@?"]["elided"] == 1
        totals = profiler.profile.check_totals()
        assert totals["dfall"] == {"executed": 2, "elided": 1}
        assert totals["snapshot_bound"] == {"executed": 0, "elided": 1}
        # Executed checks also get a timed label.
        assert profiler.profile.registry.histograms[
            "check.dfall@5:2"].count == 2


class TestProfileMerge:
    def build(self, labels, checks=()):
        profiler = make_profiler()
        for label in labels:
            profiler.bump(label)
        for kind, line in checks:
            profiler.check(kind, FakeSpan(line, 0))
        profiler.finish()
        return profiler.profile

    def test_merge_is_commutative(self):
        a1 = self.build(["op.A", "op.B"], [("dfall", 1)])
        a2 = self.build(["op.B", "op.C"], [("dfall", 1), ("dfall", 2)])
        b1 = self.build(["op.A", "op.B"], [("dfall", 1)])
        b2 = self.build(["op.B", "op.C"], [("dfall", 1), ("dfall", 2)])
        a1.merge(a2)
        b2.merge(b1)
        assert a1.check_sites == b2.check_sites
        assert {n: h.count for n, h in a1.registry.histograms.items()} \
            == {n: h.count for n, h in b2.registry.histograms.items()}
        assert a1.total_time == pytest.approx(b2.total_time)

    def test_merge_call_sites(self):
        a, b = Profile("vm"), Profile("vm")
        a.call_sites["call@1:1"] = {"name": "m", "calls": 2,
                                    "ic_misses": 1, "ic_entries": 1}
        b.call_sites["call@1:1"] = {"name": "m", "calls": 3,
                                    "ic_misses": 0, "ic_entries": 4}
        a.merge(b)
        assert a.call_sites["call@1:1"]["calls"] == 5
        assert a.call_sites["call@1:1"]["ic_misses"] == 1
        assert a.call_sites["call@1:1"]["ic_entries"] == 4

    def test_profile_is_picklable(self):
        profile = self.build(["op.A"], [("dfall", 1)])
        clone = pickle.loads(pickle.dumps(profile))
        assert clone.check_sites == profile.check_sites
        assert clone.total_time == pytest.approx(profile.total_time)

    def test_as_dict_shape(self):
        profile = self.build(["op.A", "op.B"], [("dfall", 3)])
        payload = json.loads(json.dumps(profile.as_dict()))
        assert payload["engine"] == "vm"
        assert payload["labels"]["op.A"]["count"] == 1
        assert payload["check_sites"]["dfall@3:0"]["executed"] == 1
        assert payload["check_totals"]["dfall"]["executed"] == 1


class TestViews:
    def test_collapsed_stacks_microseconds(self):
        profile = Profile("vm")
        profile.stack_time["Main.main;Agent.work"] = 0.0025
        profile.stack_time["(root)"] = 0.001
        lines = collapsed_stacks(profile)
        assert "Main.main;Agent.work 2500" in lines
        assert "(root) 1000" in lines

    def test_chrome_trace_is_json_and_contiguous(self):
        profiler = make_profiler()
        profiler.bump("op.A")
        profiler.bump("op.B")
        profiler.finish()
        trace = json.loads(json.dumps(
            profile_chrome_trace(profiler.profile)))
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"
                  and e["tid"] == 0]
        assert events, "expected aggregate label events"
        cursor = 0.0
        for event in events:
            assert event["ts"] == pytest.approx(cursor)
            cursor += event["dur"]

    def test_energy_by_label_proportional(self):
        profile = Profile("vm")
        profile.mode_time[("op.A", "es")] = 1.0
        profile.mode_time[("op.B", "es")] = 3.0
        profile.mode_time[("op.C", None)] = 2.0
        joules = energy_by_label(profile, {"es": 8.0, "(untracked)": 5.0})
        assert joules["op.A"] == pytest.approx(2.0)
        assert joules["op.B"] == pytest.approx(6.0)
        assert joules["op.C"] == pytest.approx(5.0)
        assert sum(joules.values()) == pytest.approx(13.0)

    def test_energy_by_label_skips_unknown_modes(self):
        profile = Profile("vm")
        profile.mode_time[("op.A", "never_metered")] = 1.0
        assert energy_by_label(profile, {"es": 8.0}) == {}


class TestRendering:
    def make_profile(self):
        profiler = make_profiler()
        profiler.push("Main.main")
        profiler.call("call@?", "Main.main")
        for _ in range(3):
            profiler.bump("op.ADD")
        profiler.check("dfall", FakeSpan(4, 2), "es")
        profiler.pop()
        profiler.finish()
        return profiler.profile

    def test_render_sections(self):
        text = render_profile(self.make_profile(), top=2, checks=True)
        assert "Profile (engine=vm)" in text
        assert "Hot labels:" in text
        assert "more labels; raise --top" in text
        assert "Call sites:" in text
        assert "Check sites:" in text
        assert "dfall@4:2" in text
        assert "Check totals:" in text

    def test_render_with_energy_column(self):
        profile = self.make_profile()
        text = render_profile(profile, energy={"op.ADD": 1.25})
        assert "joules" in text
        assert "1.250000" in text

    def test_write_profile_formats(self, tmp_path):
        profile = self.make_profile()
        out = tmp_path / "p.json"
        write_profile(profile, str(out), fmt="json")
        assert json.loads(out.read_text())["engine"] == "vm"
        out = tmp_path / "p.collapsed"
        write_profile(profile, str(out), fmt="collapsed")
        assert "Main.main" in out.read_text()
        out = tmp_path / "p.chrome.json"
        write_profile(profile, str(out), fmt="chrome")
        assert "traceEvents" in json.loads(out.read_text())

    def test_write_profile_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError):
            write_profile(self.make_profile(),
                          str(tmp_path / "p"), fmt="xml")


class TestNullProfiler:
    def test_disabled_and_inert(self):
        assert NULL_PROFILER.enabled is False
        assert isinstance(NULL_PROFILER, NullProfiler)
        NULL_PROFILER.bump("op.A")
        NULL_PROFILER.push("m")
        NULL_PROFILER.pop()
        NULL_PROFILER.call("call@1:1", "m")
        NULL_PROFILER.ic_miss("call@1:1", "m", 1)
        NULL_PROFILER.check("dfall", None)
        NULL_PROFILER.check_id("dfall@?", "dfall")
        NULL_PROFILER.check_elided("dfall", None)
        NULL_PROFILER.check_elided_id("dfall@?", "dfall")
        NULL_PROFILER.finish()
        assert NULL_PROFILER.profile is None

    def test_formats_constant(self):
        assert set(PROFILE_FORMATS) \
            == {"text", "json", "collapsed", "chrome"}
