"""Interpreter unit tests: the Java-like fragment."""

import pytest

from repro.core.errors import BadCastError, EntRuntimeError, FuelExhausted
from repro.lang.interp import InterpOptions, run_source

MODES = "modes { energy_saver <= managed; managed <= full_throttle; }\n"


def run(body, extra_classes="", **kwargs):
    source = (MODES + extra_classes
              + "class Main { void main() { " + body + " } }")
    return run_source(source, **kwargs)


def output_of(body, extra_classes="", **kwargs):
    return run(body, extra_classes, **kwargs).output


class TestArithmetic:
    def test_integers(self):
        assert output_of("Sys.print(1 + 2 * 3);") == ["7"]

    def test_truncating_division(self):
        # Java semantics: integer division truncates towards zero.
        assert output_of("Sys.print(7 / 2); Sys.print(-7 / 2);") == \
            ["3", "-3"]

    def test_modulo_sign(self):
        assert output_of("Sys.print(-7 % 2);") == ["-1"]

    def test_division_by_zero(self):
        with pytest.raises(EntRuntimeError):
            run("int x = 1 / 0;")

    def test_doubles(self):
        assert output_of("Sys.print(1.5 + 2.5);") == ["4.0"]

    def test_comparisons(self):
        assert output_of("Sys.print(1 < 2); Sys.print(2 <= 1);") == \
            ["true", "false"]

    def test_short_circuit(self):
        # Division by zero on the right is never evaluated.
        assert output_of(
            "boolean b = false && (1 / 0 == 0); Sys.print(b);") == ["false"]

    def test_string_concat(self):
        assert output_of('Sys.print("x=" + 1 + "," + true + "," + null);'
                         ) == ["x=1,true,null"]


class TestControlFlow:
    def test_while_loop(self):
        assert output_of(
            "int i = 0; int acc = 0;"
            "while (i < 5) { acc = acc + i; i = i + 1; }"
            "Sys.print(acc);") == ["10"]

    def test_break_continue(self):
        assert output_of(
            "int i = 0; int acc = 0;"
            "while (true) { i = i + 1; if (i > 10) { break; }"
            "  if (i % 2 == 0) { continue; } acc = acc + i; }"
            "Sys.print(acc);") == ["25"]

    def test_foreach(self):
        assert output_of(
            "int acc = 0; foreach (int x : [1, 2, 3]) { acc = acc + x; }"
            "Sys.print(acc);") == ["6"]

    def test_nested_if(self):
        assert output_of(
            "int x = 5;"
            "if (x > 10) { Sys.print(1); }"
            "else { if (x > 3) { Sys.print(2); } else { Sys.print(3); } }"
            ) == ["2"]

    def test_fuel_bounds_divergence(self):
        with pytest.raises(FuelExhausted):
            run("while (true) { }", options=InterpOptions(fuel=1000))


class TestObjects:
    COUNTER = """
    class Counter {
        int count;
        Counter(int start) { this.count = start; }
        int increment() { count = count + 1; return count; }
    }
    """

    def test_fields_and_methods(self):
        assert output_of(
            "Counter c = new Counter(10); c.increment(); c.increment();"
            "Sys.print(c.count);", self.COUNTER) == ["12"]

    def test_field_defaults(self):
        assert output_of(
            "Holder h = new Holder(); Sys.print(h.n); Sys.print(h.d); "
            "Sys.print(h.b); Sys.print(h.s);",
            "class Holder { int n; double d; boolean b; String s; }"
            ) == ["0", "0.0", "false", "null"]

    def test_field_initializers(self):
        assert output_of(
            "Holder h = new Holder(); Sys.print(h.greeting);",
            'class Holder { String greeting = "hi"; }') == ["hi"]

    def test_objects_identity_equality(self):
        assert output_of(
            "Counter a = new Counter(1); Counter b = new Counter(1);"
            "Counter c = a;"
            "Sys.print(a == b); Sys.print(a == c);", self.COUNTER) == \
            ["false", "true"]

    def test_inherited_method(self):
        assert output_of(
            "Sub s = new Sub(); Sys.print(s.basef());",
            "class Base { int basef() { return 42; } }"
            "class Sub extends Base { }") == ["42"]

    def test_override_dispatch(self):
        assert output_of(
            "Base b = new Sub(); Sys.print(b.f());",
            "class Base { int f() { return 1; } }"
            "class Sub extends Base { int f() { return 2; } }"
            .replace("class Sub extends Base",
                     "class Sub extends Base")) == ["2"]

    def test_instanceof_subclass(self):
        assert output_of(
            "Base x = new Sub();"
            "Sys.print(x instanceof Sub); Sys.print(x instanceof Base);",
            "class Base { } class Sub extends Base { }") == \
            ["true", "true"]

    def test_null_receiver(self):
        with pytest.raises(EntRuntimeError):
            run("Counter c = null; c.increment();", self.COUNTER)


class TestCastsAndLists:
    def test_numeric_casts(self):
        assert output_of("Sys.print((int) 2.9); Sys.print((double) 2);"
                         ) == ["2", "2.0"]

    def test_list_roundtrip_with_cast(self):
        assert output_of(
            "List l = new List(); l.add(new Box()); "
            "Box b = (Box) l.get(0); Sys.print(b.v);",
            "class Box { int v = 7; }") == ["7"]

    def test_bad_class_cast(self):
        with pytest.raises(BadCastError):
            run("List l = new List(); l.add(new A2()); B2 b = (B2) l.get(0);",
                "class A2 { } class B2 { }")

    def test_null_cast_ok(self):
        assert output_of(
            "Box b = (Box) null; Sys.print(b == null);",
            "class Box { }") == ["true"]

    def test_list_methods(self):
        assert output_of(
            "List l = [10, 20, 30];"
            "Sys.print(l.size()); Sys.print(l.get(1));"
            "Sys.print(l.indexOf(30)); Sys.print(l.contains(99));"
            "l.remove(0); Sys.print(l.get(0));"
            "l.set(0, 5); Sys.print(l.get(0));"
            "l.clear(); Sys.print(l.isEmpty());") == \
            ["3", "20", "2", "false", "20", "5", "true"]

    def test_list_out_of_range(self):
        with pytest.raises(EntRuntimeError):
            run("List l = new List(); l.get(0);")

    def test_string_methods(self):
        assert output_of(
            'String s = "Hello World";'
            "Sys.print(s.length()); Sys.print(s.substring(0, 5));"
            'Sys.print(s.contains("World")); Sys.print(s.toLowerCase());'
            'Sys.print(s.split(" ").size());') == \
            ["11", "Hello", "true", "hello world", "2"]

    def test_string_hashcode_java_compatible(self):
        # "Abc".hashCode() in Java is 65602.
        assert output_of('Sys.print("Abc".hashCode());') == ["65602"]


class TestNatives:
    def test_math(self):
        assert output_of(
            "Sys.print(Math.min(3, 1)); Sys.print(Math.max(2.0, 5.0));"
            "Sys.print(Math.floor(2.9)); Sys.print(Math.ceil(2.1));"
            "Sys.print(Math.abs(-4)); Sys.print(Math.sqrt(16.0));") == \
            ["1", "5.0", "2", "3", "4", "4.0"]

    def test_sys_parse_int(self):
        assert output_of('Sys.print(Sys.parseInt("42") + 1);') == ["43"]

    def test_sys_rand_deterministic(self):
        a = output_of("Sys.print(Sys.randInt(100));", seed=5)
        b = output_of("Sys.print(Sys.randInt(100));", seed=5)
        assert a == b

    def test_platform_accounting(self):
        interp = run("Sys.work(10); Sys.io(100); Sys.net(20); "
                     "Sys.sleep(50);")
        assert interp.platform.work_units == 10
        assert interp.platform.io_total == 100
        assert interp.platform.net_total == 20
        assert interp.platform.slept == pytest.approx(0.05)

    def test_main_args(self):
        source = MODES + """
        class Main {
            void main(List args) {
                foreach (String a : args) { Sys.print(a); }
            }
        }
        """
        interp = run_source(source, args=["x", "y"])
        assert interp.output == ["x", "y"]
