"""Unit tests for the register-bytecode lowering and VM specifics:
engine resolution, superinstruction fallbacks, handler unwinding,
fuel accounting on ``continue``, and the disassembler."""

import pytest

from repro.core.errors import FuelExhausted
from repro.lang.bytecode import disassemble, lower_body
from repro.lang.engines import ENGINES, resolve_engine
from repro.lang.interp import Interpreter, InterpOptions
from repro.lang.typechecker import check_program

MODES = "modes { lo <= mid; mid <= hi; }\n"


def run(source, engine, fuel=100_000):
    interp = Interpreter(
        check_program(source),
        options=InterpOptions(engine=engine, fuel=fuel))
    interp.run()
    return interp


def agree(source, **kwargs):
    """Output of every engine on ``source``, asserted identical."""
    outputs = [run(source, engine, **kwargs).output
               for engine in ENGINES]
    assert outputs[0] == outputs[1] == outputs[2]
    return outputs[0]


class TestResolveEngine:
    def test_default_is_walk(self):
        assert resolve_engine() == "walk"

    def test_compile_flag_maps_to_compiled(self):
        assert resolve_engine(compile_flag=True) == "compiled"

    def test_explicit_engine_wins_over_flag(self):
        assert resolve_engine("vm", compile_flag=True) == "vm"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("tracing-gc")

    def test_jit_engine_registered(self):
        assert resolve_engine("jit") == "jit"

    def test_interp_options_engine_validated(self):
        checked = check_program(MODES + "class Main { void main() { } }")
        with pytest.raises(ValueError, match="unknown engine"):
            Interpreter(checked, options=InterpOptions(engine="tracing-gc"))

    def test_interp_records_engine(self):
        checked = check_program(MODES + "class Main { void main() { } }")
        interp = Interpreter(checked,
                             options=InterpOptions(engine="vm"))
        assert interp.engine == "vm"


class TestSuperinstructions:
    def test_inc_fallback_on_string_accumulator(self):
        # ``s = s + 1`` matches the INC pattern shape but the slot
        # holds a string at runtime; the VM must fall back to the
        # generic binary op (string concatenation), not arithmetic.
        source = MODES + """
class Main {
    void main() {
        String s = "n";
        int i = 0;
        while (i < 3) { s = s + 1; i = i + 1; }
        Sys.print(s);
    }
}
"""
        assert agree(source) == ["n111"]

    def test_inc_subtraction(self):
        source = MODES + """
class Main {
    void main() {
        int i = 10;
        while (i > 0) { i = i - 3; }
        Sys.print(i);
    }
}
"""
        assert agree(source) == ["-2"]

    def test_field_add_and_ret_field(self):
        source = MODES + """
class Acc@mode<hi> {
    int total;
    int bump(int k) { total = total + k; return total; }
}
class Main {
    void main() {
        Acc a = new Acc();
        int i = 0;
        while (i < 5) { a.bump(i); i = i + 1; }
        Sys.print(a.bump(0));
    }
}
"""
        assert agree(source) == ["10"]

    def test_fused_compare_on_floats_and_ints(self):
        source = MODES + """
class Main {
    void main() {
        int hits = 0;
        int i = 0;
        while (i < 4) {
            if (i <= 1.5) { hits = hits + 1; }
            if (i != 2) { hits = hits + 10; }
            i = i + 1;
        }
        Sys.print(hits);
    }
}
"""
        assert agree(source) == ["32"]


class TestControlFlow:
    def test_break_unwinds_handlers(self):
        # ``break`` out of a try inside a loop must pop the handler:
        # the throw after the loop ends the program, uncaught by the
        # (dead) loop handler.
        source = MODES + """
class D@mode<?X> {
    attributor { return hi; }
    D() { }
}
class Main {
    void main() {
        int acc = 0;
        int i = 0;
        while (i < 10) {
            try {
                i = i + 1;
                if (i > 2) { break; }
            } catch (EnergyException e) { acc = acc + 100; }
        }
        try { D d = snapshot (new D@mode<?>()) [_, lo]; }
        catch (EnergyException e) { acc = acc + 1; }
        Sys.print(acc + i);
    }
}
"""
        assert agree(source) == ["4"]

    def test_continue_is_charged_fuel(self):
        # A continue-only loop still consumes fuel each iteration; a
        # VM that skipped the loop-head FUEL charge on the back edge
        # would spin forever here.
        source = MODES + """
class Main {
    void main() {
        int i = 0;
        while (true) { i = i + 1; continue; }
    }
}
"""
        for engine in ENGINES:
            with pytest.raises(FuelExhausted):
                run(source, engine, fuel=2_000)

    def test_nested_loops_break_inner_only(self):
        source = MODES + """
class Main {
    void main() {
        int acc = 0;
        int i = 0;
        while (i < 3) {
            int j = 0;
            while (true) {
                j = j + 1;
                if (j >= 2) { break; }
            }
            acc = acc + j;
            i = i + 1;
        }
        Sys.print(acc);
    }
}
"""
        assert agree(source) == ["6"]


class TestDisassembler:
    HOT = MODES + """
class Acc@mode<hi> {
    int total;
    int bump(int k) { total = total + k; return total; }
}
class Main {
    void main() {
        Acc a = new Acc();
        int i = 0;
        while (i < 100) { a.bump(i); i = i + 1; }
        Sys.print(a.total);
    }
}
"""

    def _codes(self):
        checked = check_program(self.HOT)
        interp = Interpreter(checked,
                             options=InterpOptions(engine="vm"))
        program = checked.program
        texts = {}
        for cls in program.classes:
            for method in cls.methods:
                minfo = interp._find_method(interp.table.get(cls.name),
                                            method.name)
                texts[f"{cls.name}.{method.name}"] = disassemble(
                    interp._vm.code_for_method(minfo))
        return texts

    def test_superinstructions_in_listing(self):
        texts = self._codes()
        main = texts["Main.main"]
        assert "FUEL" in main
        assert "JF_LT" in main
        assert "INC" in main
        assert "CALL_DFALL" in main and ";; DFALL_CHECK" in main
        bump = texts["Acc.bump"]
        assert "FIELD_ADD" in bump
        assert "RET_FIELD" in bump

    def test_header_names_slots_and_consts(self):
        texts = self._codes()
        assert texts["Main.main"].splitlines()[0].startswith(
            "; Main.main ")
        assert "slots=" in texts["Main.main"]

    def test_const_pool_rendering(self):
        texts = self._codes()
        # The loop bound 100 lives in the const pool and renders as a
        # k-index with its value.
        assert "=100" in texts["Main.main"]

    def test_lower_body_idempotent_shape(self):
        checked = check_program(self.HOT)
        interp = Interpreter(checked,
                             options=InterpOptions(engine="vm"))
        decl = next(c for c in checked.program.classes
                    if c.name == "Acc").methods[0]
        one = lower_body(interp, decl.body, ["k"])
        two = lower_body(interp, decl.body, ["k"])
        assert disassemble(one) == disassemble(two)


class TestShallowOpcodes:
    """Transient checking lowers to dedicated shallow opcodes
    (``CALL_SHALLOW``/``SNAPSHOT_SHALLOW``) and the JIT inlines the
    matching tag probes; full checking must never emit them."""

    PROGRAM = MODES + """
class R@mode<?X> {
    int load;
    attributor {
        if (load > 10) { return hi; }
        return lo;
    }
    R(int load) { this.load = load; }
    int get() { return load; }
}
class Main {
    void main() {
        R@mode<?> r = new R@mode<?>(7);
        int i = 0;
        while (i < 3) {
            R s = snapshot r [lo, hi];
            Sys.print(s.get());
            i = i + 1;
        }
    }
}
"""

    def _main_listing(self, checks):
        checked = check_program(self.PROGRAM)
        interp = Interpreter(checked,
                             options=InterpOptions(engine="vm",
                                                   checks=checks))
        main_cls = next(c for c in checked.program.classes
                        if c.name == "Main")
        minfo = interp._find_method(interp.table.get("Main"), "main")
        assert main_cls is not None
        return disassemble(interp._vm.code_for_method(minfo))

    def test_transient_lowering_uses_shallow_opcodes(self):
        listing = self._main_listing("transient")
        assert "SNAPSHOT_SHALLOW" in listing
        assert "CALL_SHALLOW" in listing
        assert ";; BOUND_CHECK (transient: tag-vs-bounds probe)" \
            in listing
        assert ";; DFALL_CHECK (transient: shallow tag probe)" \
            in listing
        assert "CALL_DFALL" not in listing

    def test_full_lowering_keeps_deep_opcodes(self):
        listing = self._main_listing("full")
        assert "SHALLOW" not in listing
        assert "CALL_DFALL" in listing
        assert "SNAPSHOT " in listing or "SNAPSHOT\t" in listing

    def test_jit_inlines_shallow_probes(self):
        from repro.lang.jit import jit_source

        checked = check_program(self.PROGRAM)
        interp = Interpreter(checked,
                             options=InterpOptions(engine="vm",
                                                   checks="transient"))
        minfo = interp._find_method(interp.table.get("Main"), "main")
        source = jit_source(interp._vm,
                            interp._vm.code_for_method(minfo))
        assert "shallow_checks" in source
