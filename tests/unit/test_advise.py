"""Unit tests for ``repro.advise``: uncertainty propagation, the cost
model, Pareto pruning, the attributor pin rewriter, and the
interval-valued renderers it feeds (profile table, Prometheus gauges,
per-class analysis rollups)."""

import json
import math
import pathlib

import pytest

from repro.advise import (ARCHS, AdviseConfig, Candidate, CostEntry,
                          CostModel, Uncertain, builtin_model,
                          dominates, energy_intervals, format_interval,
                          pareto_frontier, pin_classes, sum_uncertain,
                          widen)
from repro.core.errors import EntError
from repro.lang.typechecker import check_program

ROOT = pathlib.Path(__file__).resolve().parents[2]
CRAWLER = (ROOT / "examples" / "ent" / "crawler.ent").read_text()
SENSORS = (ROOT / "examples" / "ent" / "sensors.ent").read_text()


# ---------------------------------------------------------------------------
# Uncertain


def test_uncertain_propagation_rules():
    a = Uncertain(10.0, 4.0, n=5)
    b = Uncertain(3.0, 9.0, n=2)
    s = a + b
    assert s.mean == 13.0 and s.var == 13.0 and s.n == 2
    d = a - b
    assert d.mean == 7.0 and d.var == 13.0
    k = a.scale(2.0)
    assert k.mean == 20.0 and k.var == 16.0 and k.n == 5
    t = a.times(100)
    assert t.mean == 1000.0 and t.var == 400.0


def test_uncertain_from_samples_and_ci():
    u = Uncertain.from_samples([1.0, 2.0, 3.0])
    assert u.mean == 2.0 and u.n == 3
    assert u.var == pytest.approx(1.0)  # unbiased sample variance
    lo, hi = u.ci(z=2.0)
    assert lo == pytest.approx(0.0) and hi == pytest.approx(4.0)
    single = Uncertain.from_samples([5.0])
    assert single.var == 0.0 and single.n == 1
    with pytest.raises(ValueError):
        Uncertain.from_samples([])


def test_widen_applies_relative_and_absolute_floors():
    tight = widen(Uncertain(100.0, 1e-12), rel_floor=0.02)
    assert tight.std == pytest.approx(2.0)
    zero = widen(Uncertain(0.0, 0.0), abs_floor=1e-9)
    assert zero.std == pytest.approx(1e-9)
    loose = widen(Uncertain(10.0, 25.0), rel_floor=0.01)
    assert loose.std == pytest.approx(5.0)  # already above the floor


def test_uncertain_dict_round_trip_and_format():
    u = Uncertain(1.5, 0.04, n=7)
    back = Uncertain.from_dict(u.as_dict())
    assert back.mean == pytest.approx(u.mean)
    assert back.std == pytest.approx(u.std)
    assert back.n == 7
    text = format_interval(u, "J", digits=3)
    assert "±" in text and text.endswith("J")
    assert format_interval(Uncertain.exact(2.0), digits=1) \
        == "2.0 ± 0.0"


def test_sum_uncertain_adds_means_and_variances():
    total = sum_uncertain([Uncertain(1.0, 1.0), Uncertain(2.0, 2.0),
                           Uncertain(3.0, 3.0)])
    assert total.mean == 6.0 and total.var == 6.0


# ---------------------------------------------------------------------------
# Cost model


def test_builtin_archs_cover_required_keys():
    assert set(ARCHS) == {"sim45nm", "skylake", "cortex-a53"}
    for arch in ARCHS:
        model = builtin_model(arch)
        for key in ("default", "check.dfall", "check.snapshot_bound",
                    "check.mcase_elim", "native", "alloc"):
            assert key in model.entries, (arch, key)
    with pytest.raises(EntError):
        builtin_model("vax")


def test_label_resolution_chain():
    model = builtin_model()
    assert model.resolve_key("check.dfall") == "check.dfall"
    assert model.resolve_key("op.ADD") == "alu"
    assert model.resolve_key("op.CALL_DFALL") == "check.dfall"
    assert model.resolve_key("op.SNAPSHOT") == "check.snapshot_bound"
    assert model.resolve_key("check.dfall@3:4") == "check.dfall"
    assert model.resolve_key(
        "check.mcase_elim@10:2") == "check.mcase_elim"
    assert model.resolve_key("node.Var") == "node"
    assert model.resolve_key("call.Site.crawl") == "call"
    assert model.resolve_key("native.Sys.work") == "native"
    assert model.resolve_key("attributor.Site") == "attributor"
    assert model.resolve_key("engine.vm") == "default"


def test_cost_j_scales_counts_into_joules():
    model = builtin_model("sim45nm")
    one = model.cost("check.dfall")
    many = model.cost_j("check.dfall@5:5", 1000)
    assert many.mean == pytest.approx(one.mean * 1000 * 1e-12)
    # i.i.d. sum: variance scales with the count, std with sqrt(count)
    assert many.std == pytest.approx(
        one.std * math.sqrt(1000) * 1e-12)


def test_cost_model_json_round_trip(tmp_path):
    model = builtin_model("skylake")
    model.entries["check.dfall"].samples.extend([150.0, 210.0])
    path = tmp_path / "model.json"
    model.dump(str(path))
    back = CostModel.load(str(path))
    assert back.arch == "skylake"
    assert back.entries["check.dfall"].samples == [150.0, 210.0]
    assert back.entries["alu"].mean_pj \
        == model.entries["alu"].mean_pj
    with pytest.raises(EntError):
        CostModel.from_dict({"arch": "x", "entries": {}})


def test_calibrate_absorbs_profile_payload():
    model = builtin_model("sim45nm")
    before = model.entries["check.dfall"].mean_pj
    payload = {
        "energy_by_label": {"check.dfall@3:4": 2e-9,
                            "node.Var": 1e-9,
                            "zero.count": 5.0},
        "profile": {"labels": {
            "check.dfall@3:4": {"count": 10},
            "node.Var": {"count": 1000},
            "zero.count": {"count": 0},
        }},
    }
    absorbed = model.calibrate(payload)
    assert absorbed == 2  # the zero-count label contributes nothing
    # 2e-9 J over 10 execs = 0.2 nJ = 200 pJ per exec
    assert model.entries["check.dfall"].mean_pj \
        == pytest.approx(200.0)
    assert model.entries["check.dfall"].mean_pj != before
    assert model.entries["node"].samples == [pytest.approx(1.0)]


def test_entry_distribution_prefers_samples():
    prior = CostEntry(mean_pj=50.0, rel_std=0.1)
    assert prior.distribution().mean == 50.0
    assert prior.distribution().std == pytest.approx(5.0)
    measured = CostEntry(mean_pj=50.0, rel_std=0.1,
                         samples=[10.0, 30.0])
    dist = measured.distribution()
    assert dist.mean == pytest.approx(20.0) and dist.n == 2
    degenerate = CostEntry(mean_pj=50.0, rel_std=0.1,
                           samples=[40.0, 40.0])
    dist = degenerate.distribution()
    assert dist.mean == pytest.approx(40.0)
    assert dist.std == pytest.approx(4.0)  # falls back to rel_std


# ---------------------------------------------------------------------------
# Pareto


def _cand(name, energy, risk):
    return Candidate(assignment={"C": name}, energy=Uncertain(energy),
                     risk=risk)


def test_dominates_and_frontier():
    a = _cand("a", 1.0, 0.5)
    b = _cand("b", 2.0, 0.6)
    c = _cand("c", 0.5, 0.9)
    d = _cand("d", 1.0, 0.5)  # exact tie with a: both kept
    assert dominates(a, b)
    assert not dominates(a, c) and not dominates(c, a)
    assert not dominates(a, d) and not dominates(d, a)
    frontier = pareto_frontier([b, a, c, d])
    names = [f.assignment["C"] for f in frontier]
    assert "b" not in names
    assert set(names) == {"a", "c", "d"}
    # deterministic order: sorted by (energy, risk, name)
    assert frontier == pareto_frontier([d, c, b, a])


def test_candidate_name_and_dict():
    cand = Candidate(assignment={"B": None, "A": "low"},
                     energy=Uncertain(1.0, 0.01), risk=0.25)
    assert cand.name == "A=low,B=?"
    data = cand.as_dict()
    assert data["assignment"] == {"A": "low", "B": None}
    assert data["energy_j"]["mean"] == 1.0
    assert data["risk"] == 0.25


# ---------------------------------------------------------------------------
# The pin rewriter


PINNABLE = """
modes { low <= high; }
class Worker@mode<?X> {
    int load;
    attributor {
        if (load > 10) { return high; }
        return low;
    }
    Worker(int load) { this.load = load; }
    @mode<?Y> int step()
    attributor { return high; }
    {
        return load;
    }
}
class Main { void main() {
    Worker dw = new Worker@mode<?>(3);
    Worker w = snapshot dw;
    Sys.print("" + w.step());
} }
"""


def test_pin_classes_rewrites_only_the_class_attributor():
    pinned = pin_classes(PINNABLE, {"Worker": "low"})
    assert "attributor { return low; }" in pinned
    # The method-level attributor is untouched.
    assert "attributor { return high; }" in pinned
    assert "load > 10" not in pinned
    check_program(pinned)  # still a valid program


def test_pin_classes_is_identity_for_empty_assignment():
    assert pin_classes(CRAWLER, {}) == CRAWLER
    assert pin_classes(CRAWLER, {"Site": None, "Agent": None}) \
        == CRAWLER


def test_pin_classes_crawler_variants_typecheck():
    for cls, mode in (("Site", "energy_saver"),
                      ("Agent", "managed")):
        pinned = pin_classes(CRAWLER, {cls: mode})
        assert f"attributor {{ return {mode}; }}" in pinned
        check_program(pinned)
    both = pin_classes(CRAWLER, {"Site": "managed",
                                 "Agent": "energy_saver"})
    check_program(both)
    assert both.count("attributor { return") == 2


def test_pin_classes_unknown_class_raises():
    with pytest.raises(EntError):
        pin_classes(CRAWLER, {"Nonexistent": "managed"})
    # Main has no attributor at all.
    with pytest.raises(EntError):
        pin_classes(CRAWLER, {"Main": "managed"})


# ---------------------------------------------------------------------------
# Interval-valued renderers


def _profiled_crawler():
    from repro.lang.interp import Interpreter, InterpOptions
    from repro.obs.prof import Profiler
    from repro.obs.report import energy_attribution
    from repro.obs.tracer import Tracer
    from repro.platform.systems import make_platform

    checked = check_program(CRAWLER)
    profiler = Profiler("walk")
    tracer = Tracer()
    platform = make_platform("A", seed=0)
    interp = Interpreter(checked, platform=platform,
                         options=InterpOptions(engine="walk"),
                         seed=0, tracer=tracer, profiler=profiler)
    interp.run([])
    _scope, attribution = energy_attribution(tracer.events())
    return profiler.profile, attribution


def test_energy_intervals_match_point_estimates():
    from repro.obs.prof import energy_by_label

    profile, attribution = _profiled_crawler()
    model = builtin_model()
    intervals = energy_intervals(profile, attribution, model)
    points = energy_by_label(profile, attribution)
    assert set(intervals) == set(points)
    for label, value in intervals.items():
        assert value.mean == pytest.approx(points[label])
        assert value.std >= 0.0
    # Hot labels are known more tightly (relative std shrinks with
    # execution count).
    hot = intervals["node.Var"]
    counts = {name: h.count
              for name, h in profile.registry.histograms.items()}
    assert counts["node.Var"] > 100
    assert hot.std / hot.mean < model.relative_std("node.Var")


def test_render_profile_formats_intervals():
    from repro.obs.prof import render_profile

    profile, attribution = _profiled_crawler()
    intervals = energy_intervals(profile, attribution, builtin_model())
    text = render_profile(profile, top=5, checks=True,
                          energy=intervals)
    assert "±" in text
    assert "joules" in text
    # Plain floats still render without an interval.
    plain = render_profile(profile, top=5,
                           energy={"node.Var": 1.25})
    assert "1.250000" in plain and "±" not in plain.split(
        "node.Var")[1].splitlines()[0]


def test_render_prometheus_interval_gauges():
    from repro.obs.export import render_prometheus
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.gauges['energy "total"\\j'] = Uncertain(2.0, 0.01)
    registry.gauges["plain"] = 1.5
    text = render_prometheus(registry)
    lines = text.splitlines()
    assert lines[0] == "# TYPE repro_gauge gauge"
    # Label escaping survives the interval path.
    assert any('energy \\"total\\"\\\\j' in line for line in lines)
    mean_line = [l for l in lines
                 if 'name="plain"' in l][0]
    assert mean_line.endswith("1.5")
    lo = [l for l in lines if 'ci="lo"' in l]
    hi = [l for l in lines if 'ci="hi"' in l]
    assert len(lo) == 1 and len(hi) == 1
    half = 2.575829 * 0.1
    assert float(lo[0].rsplit(" ", 1)[1]) \
        == pytest.approx(2.0 - half, rel=1e-6)
    assert float(hi[0].rsplit(" ", 1)[1]) \
        == pytest.approx(2.0 + half, rel=1e-6)
    # Exposition format: every non-comment line is "series value".
    for line in lines[1:]:
        series, value = line.rsplit(" ", 1)
        float(value)
        assert series.startswith("repro_gauge{name=")


def test_profile_merge_interval_aggregation_is_order_independent():
    from repro.obs.prof import Profile

    profile, attribution = _profiled_crawler()
    other = Profile(engine="walk")
    other.registry.histogram("node.Var").record(0.5)
    other.mode_time[("node.Var", "managed")] = 0.5
    other.registry.histogram("extra.label").record(0.25)
    other.mode_time[("extra.label", "managed")] = 0.25

    ab = Profile(engine="walk")
    ab.merge(profile)
    ab.merge(other)
    ba = Profile(engine="walk")
    ba.merge(other)
    ba.merge(profile)

    model = builtin_model()
    ia = energy_intervals(ab, attribution, model)
    ib = energy_intervals(ba, attribution, model)
    assert set(ia) == set(ib)
    for label in ia:
        assert ia[label].mean == pytest.approx(ib[label].mean)
        assert ia[label].std == pytest.approx(ib[label].std)


# ---------------------------------------------------------------------------
# Per-class analysis rollup (the `repro analyze --json` satellite)


def test_analyze_by_class_rollup_regression():
    from repro.analysis import analyze_program

    report = analyze_program(check_program(CRAWLER),
                             file="crawler.ent")
    data = report.as_dict()
    assert "by_class" in data
    rollup = data["by_class"]
    assert "Site" in rollup and "Agent" in rollup
    site = rollup["Site"]
    # Residual obligations all target Site (its attributor depends on
    # runtime state); Agent's checks are planner-elided.
    assert site["counts"]["residual"] == 3
    assert "dfall@57:16" in site["residual_sites"]
    assert "snapshot_bound@56:18" in site["residual_sites"]
    agent = rollup["Agent"]
    assert agent["counts"]["residual"] == 0
    assert agent["counts"]["elided"] >= 3
    assert "dfall@66:44" in agent["elided_sites"]
    # The rollup is JSON-serializable and keyed in sorted order.
    assert list(rollup) == sorted(rollup)
    json.dumps(data)


# ---------------------------------------------------------------------------
# AdviseConfig plumbing


def test_advise_config_defaults():
    cfg = AdviseConfig()
    assert cfg.arch == "sim45nm"
    assert cfg.batteries == (1.0,)
    assert cfg.runs >= 1 and cfg.samples >= 1
    assert cfg.jobs == 1
