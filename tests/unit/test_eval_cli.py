"""Unit tests for the ``python -m repro.eval`` command line."""

import json

import pytest

from repro.eval.__main__ import main


class TestFigureCommands:
    def test_figure7(self, capsys):
        assert main(["figure7"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "jspider" in out

    def test_figure10(self, capsys):
        assert main(["figure10", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "es % saved" in out

    def test_export(self, tmp_path, capsys):
        assert main(["export", "--dir", str(tmp_path),
                     "--figures", "figure7"]) == 0
        data = json.loads((tmp_path / "figure7.json").read_text())
        assert len(data) == 15

    def test_drain(self, capsys):
        assert main(["drain", "--benchmark", "crypto",
                     "--iterations", "5",
                     "--battery-scale", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "crypto on System A" in out
        assert "monotone downward: True" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])


class TestRunCliCompileFlag:
    def test_compile_flag(self, tmp_path, capsys):
        from repro.cli import main as lang_main
        program = tmp_path / "p.ent"
        program.write_text("""
        modes { lo <= hi; }
        class Main {
            void main() {
                int acc = 0;
                int i = 0;
                while (i < 100) { acc = acc + i; i = i + 1; }
                Sys.print(acc);
            }
        }
        """)
        assert lang_main(["run", str(program), "--compile"]) == 0
        assert "4950" in capsys.readouterr().out
