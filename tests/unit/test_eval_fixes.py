"""Regression tests for the evaluation-pipeline correctness fixes:

* ``repeated_energies`` retained-count (the paper runs 11, keeps 10);
* E3 trace normalization against the episode's own start time;
* lattice-derived episode classification (no hard-coded mode ranks).
"""

import pytest

from repro.eval.runner import EpisodeResult, repeated_energies, run_e3_episode
from repro.eval.sweeps import DrainRun, DrainStep
from repro.platform.systems import make_platform
from repro.workloads import (BATTERY_MODES, ES, FT, HOT, MG, OVERHEATING,
                             SAFE, THERMAL_LATTICE, get_workload, mode_leq)

_ORDER = {mode: rank for rank, mode in enumerate(BATTERY_MODES)}


class _FakeEpisode:
    def __init__(self, energy):
        self.energy_j = energy


class TestRepeatedEnergiesRetainedCount:
    def test_discard_first_retains_exactly_times(self):
        calls = []

        def run(seed):
            calls.append(seed)
            return _FakeEpisode(float(seed))

        energies = repeated_energies(run, times=10, discard_first=True)
        assert len(energies) == 10          # the paper keeps 10 ...
        assert len(calls) == 11             # ... out of 11 runs
        assert energies == [float(s) for s in range(1, 11)]

    def test_no_discard_runs_exactly_times(self):
        calls = []

        def run(seed):
            calls.append(seed)
            return _FakeEpisode(float(seed))

        energies = repeated_energies(run, times=10, discard_first=False)
        assert len(energies) == 10
        assert len(calls) == 10
        assert energies == [float(s) for s in range(10)]


class TestE3TraceNormalization:
    def test_fresh_platform_trace_normalized(self):
        result = run_e3_episode(get_workload("sunflow"), "ent", units=4)
        assert result.trace
        assert all(0.0 <= t <= 1.0 for t, _ in result.trace)

    def test_preadvanced_clock_trace_survives(self):
        """Warm-up work before the episode must not destroy the trace:
        timestamps are normalized against the episode's start, not the
        simulation-clock zero."""
        platform = make_platform("A", seed=0)
        platform.cpu_work(5000.0)       # warm-up: advances the clock
        platform.sleep(30.0)            # and pads the temperature trace
        assert platform.now() > 0.0
        result = run_e3_episode(get_workload("sunflow"), "ent", units=4,
                                platform=platform)
        assert result.trace, "pre-advanced clock dropped the whole trace"
        assert all(0.0 <= t <= 1.0 for t, _ in result.trace)
        # The trace spans the episode window, not a sliver of it.
        assert result.trace[-1][0] > 0.9

    def test_preadvanced_matches_fresh_shape(self):
        fresh = run_e3_episode(get_workload("sunflow"), "java", units=4)
        platform = make_platform("A", seed=0)
        platform.sleep(45.0)
        warmed = run_e3_episode(get_workload("sunflow"), "java", units=4,
                                platform=platform)
        assert len(warmed.trace) >= len(fresh.trace) // 2
        assert warmed.sleeps == fresh.sleeps == 0


class TestLatticeClassification:
    def test_violating_matches_lattice_for_all_combos(self):
        for boot in BATTERY_MODES:
            for workload_mode in BATTERY_MODES:
                episode = EpisodeResult(
                    benchmark="x", system="A", boot_mode=boot,
                    workload_mode=workload_mode, qos_mode=MG,
                    silent=False, energy_j=1.0, duration_s=1.0,
                    exception_raised=False)
                expected = _ORDER[workload_mode] > _ORDER[boot]
                assert episode.violating == expected, (boot, workload_mode)

    def test_mode_leq_battery_chain(self):
        assert mode_leq(ES, FT)
        assert mode_leq(MG, MG)
        assert not mode_leq(FT, ES)
        assert not mode_leq(FT, MG)

    def test_mode_leq_thermal_chain(self):
        assert mode_leq(OVERHEATING, SAFE, lattice=THERMAL_LATTICE)
        assert mode_leq(HOT, SAFE, lattice=THERMAL_LATTICE)
        assert not mode_leq(SAFE, HOT, lattice=THERMAL_LATTICE)

    def _run_with_trajectory(self, modes):
        run = DrainRun(benchmark="x", system="A")
        for index, mode in enumerate(modes):
            run.steps.append(DrainStep(
                index=index, battery_before=1.0, boot_mode=mode,
                qos_mode=mode, energy_j=1.0, duration_s=1.0))
        return run

    def test_monotone_downward_accepts_descending(self):
        run = self._run_with_trajectory([FT, FT, MG, ES, ES])
        assert run.monotone_downward()

    def test_monotone_downward_rejects_any_raise(self):
        run = self._run_with_trajectory([FT, MG, FT])
        assert not run.monotone_downward()
        run = self._run_with_trajectory([ES, MG])
        assert not run.monotone_downward()
