"""Unit tests for constraint sets and entailment (paper section 4.1)."""

import pytest

from repro.core.constraints import ConstraintSet
from repro.core.modes import BOTTOM, TOP, Mode, ModeLattice


@pytest.fixture
def lattice():
    return ModeLattice.linear(["energy_saver", "managed", "full_throttle"])


ES, MG, FT = Mode("energy_saver"), Mode("managed"), Mode("full_throttle")


class TestEntailment:
    def test_ground_facts(self, lattice):
        empty = ConstraintSet(lattice)
        assert empty.entails_one(ES, MG)
        assert empty.entails_one(ES, FT)
        assert not empty.entails_one(FT, ES)

    def test_reflexivity_on_variables(self, lattice):
        empty = ConstraintSet(lattice)
        assert empty.entails_one("X", "X")

    def test_bottom_top(self, lattice):
        empty = ConstraintSet(lattice)
        assert empty.entails_one(BOTTOM, "X")
        assert empty.entails_one("X", TOP)

    def test_variable_bounds(self, lattice):
        k = ConstraintSet(lattice, [(MG, "X"), ("X", FT)])
        assert k.entails_one(MG, "X")
        assert k.entails_one("X", FT)
        # Through the variable: managed <= X <= full_throttle.
        assert k.entails_one(ES, "X")        # es <= mg <= X
        assert not k.entails_one(FT, "X")

    def test_transitivity_through_variables(self, lattice):
        k = ConstraintSet(lattice, [("X", "Y"), ("Y", "Z")])
        assert k.entails_one("X", "Z")
        assert not k.entails_one("Z", "X")

    def test_derives_constant_facts_via_variables(self, lattice):
        k = ConstraintSet(lattice, [(MG, "X"), ("X", MG)])
        # X is pinned at managed.
        assert k.entails_one("X", MG) and k.entails_one(MG, "X")

    def test_entails_set(self, lattice):
        k = ConstraintSet(lattice, [(ES, "X"), ("X", MG)])
        weaker = ConstraintSet(lattice, [(ES, "X")])
        assert k.entails(weaker)
        stronger = ConstraintSet(lattice, [("X", ES)])
        assert not k.entails(stronger)

    def test_unentailed_variable_pair(self, lattice):
        empty = ConstraintSet(lattice)
        assert not empty.entails_one("X", "Y")


class TestOperations:
    def test_extend_immutable(self, lattice):
        base = ConstraintSet(lattice)
        extended = base.extend([(ES, "X")])
        assert len(base) == 0
        assert len(extended) == 1
        assert ("energy_saver" and (ES, "X")) in extended

    def test_variables(self, lattice):
        k = ConstraintSet(lattice, [("X", "Y"), (MG, "X")])
        assert k.variables() == {"X", "Y"}

    def test_substitute(self, lattice):
        k = ConstraintSet(lattice, [("X", FT), (ES, "X")])
        ground = k.substitute({"X": MG})
        assert (MG, FT) in ground
        assert (ES, MG) in ground
        assert ground.variables() == frozenset()

    def test_substitute_with_variable(self, lattice):
        k = ConstraintSet(lattice, [("X", FT)])
        renamed = k.substitute({"X": "Y"})
        assert ("Y", FT) in renamed

    def test_invalid_atom_rejected(self, lattice):
        with pytest.raises(TypeError):
            ConstraintSet(lattice, [(3, MG)])

    def test_unknown_mode_rejected(self, lattice):
        with pytest.raises(Exception):
            ConstraintSet(lattice, [(Mode("phantom"), MG)])


class TestConsistency:
    def test_consistent_bounds(self, lattice):
        k = ConstraintSet(lattice, [(ES, "X"), ("X", FT)])
        assert k.consistent()

    def test_inconsistent_squeeze(self, lattice):
        # full_throttle <= X <= energy_saver is unsatisfiable.
        k = ConstraintSet(lattice, [(FT, "X"), ("X", ES)])
        assert not k.consistent()

    def test_solve_range(self, lattice):
        k = ConstraintSet(lattice, [(MG, "X"), ("X", FT)])
        lo, hi = k.solve_range("X")
        assert lo == MG
        assert hi == FT

    def test_solve_range_unconstrained(self, lattice):
        k = ConstraintSet(lattice)
        lo, hi = k.solve_range("X")
        assert lo == BOTTOM and hi == TOP

    def test_solve_range_through_chain(self, lattice):
        k = ConstraintSet(lattice, [(MG, "X"), ("X", "Y"), ("Y", FT)])
        lo, hi = k.solve_range("Y")
        assert lo == MG and hi == FT
