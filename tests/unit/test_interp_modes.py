"""Interpreter unit tests for ENT semantics (paper section 4.2):
snapshot/check/copy, lazy copying, mode-case elimination, dynamic
waterfall, silent mode, and method-level attributors."""

import pytest

from repro.core.errors import EnergyException
from repro.core.modes import Mode
from repro.lang.interp import InterpOptions, NullPlatform, run_source

MODES = "modes { energy_saver <= managed; managed <= full_throttle; }\n"

SITE = """
class Site@mode<?X> {
    List resources;
    attributor {
        if (resources.size() > 200) { return full_throttle; }
        if (resources.size() > 50) { return managed; }
        return energy_saver;
    }
    Site(int n) {
        this.resources = new List();
        int i = 0;
        while (i < n) { resources.add(i); i = i + 1; }
    }
    mcase<int> depth = mcase{
        energy_saver: 1; managed: 2; full_throttle: 3;
    };
    int crawl() { return depth; }
}
"""


class _Battery(NullPlatform):
    def __init__(self, level):
        super().__init__()
        self.level = level

    def battery_fraction(self):
        return self.level


def run(body, extra_classes=SITE, **kwargs):
    source = (MODES + extra_classes
              + "class Main { void main() { " + body + " } }")
    return run_source(source, **kwargs)


class TestSnapshotSemantics:
    def test_attributor_decides_mode(self):
        interp = run("Site ds = new Site(100); Site s = snapshot ds;"
                     "Sys.print(s.crawl());")
        assert interp.output == ["2"]  # managed -> depth 2

    def test_snapshot_mode_by_size(self):
        for count, depth in ((10, "1"), (100, "2"), (300, "3")):
            interp = run(f"Site ds = new Site({count});"
                         "Site s = snapshot ds; Sys.print(s.crawl());")
            assert interp.output == [depth]

    def test_bad_check_raises(self):
        with pytest.raises(EnergyException):
            run("Site ds = new Site(300);"
                "Site s = snapshot ds [_, managed];")

    def test_lower_bound_check(self):
        with pytest.raises(EnergyException):
            run("Site ds = new Site(10);"
                "Site s = snapshot ds [managed, _];")

    def test_within_bounds(self):
        interp = run("Site ds = new Site(100);"
                     "Site s = snapshot ds [managed, managed];"
                     "Sys.print(s.crawl());")
        assert interp.output == ["2"]

    def test_exception_catchable(self):
        interp = run("""
            Site ds = new Site(300);
            try {
                Site s = snapshot ds [_, managed];
                Sys.print("no exception");
            } catch (EnergyException e) {
                Sys.print("caught");
            }
        """)
        assert interp.output == ["caught"]
        assert interp.stats.energy_exceptions == 1

    def test_lazy_copy_first_snapshot_tags_in_place(self):
        interp = run("Site ds = new Site(100); Site s = snapshot ds;")
        assert interp.stats.lazy_tags == 1
        assert interp.stats.copies == 0

    def test_second_snapshot_copies(self):
        interp = run("Site ds = new Site(100);"
                     "Site a = snapshot ds; Site b = snapshot ds;")
        assert interp.stats.lazy_tags == 1
        assert interp.stats.copies == 1

    def test_eager_copy_option(self):
        interp = run("Site ds = new Site(100); Site s = snapshot ds;",
                     options=InterpOptions(lazy_copy=False))
        assert interp.stats.copies == 1
        assert interp.stats.lazy_tags == 0

    def test_copy_is_shallow(self):
        # The snapshot shares field *values* with the original: adding
        # through the copy's list is visible through the original.
        interp = run("""
            Site ds = new Site(100);
            Site a = snapshot ds;
            Site b = snapshot ds;
            b.resources.add(999);
            Sys.print(a.resources.size());
        """, options=InterpOptions(lazy_copy=False))
        assert interp.output == ["101"]

    def test_monotonic_no_equivocation(self):
        # Re-snapshotting after growth: the old copy keeps its mode,
        # the new copy observes the new one — aliases never disagree
        # about one object's mode.
        interp = run("""
            Site ds = new Site(100);
            Site a = snapshot ds;
            int i = 0;
            while (i < 200) { ds.resources.add(i); i = i + 1; }
            Site b = snapshot ds;
            Sys.print(a.crawl());
            Sys.print(b.crawl());
        """)
        assert interp.output == ["2", "3"]

    def test_on_snapshot_hook(self):
        events = []
        source = (MODES + SITE +
                  "class Main { void main() {"
                  "Site ds = new Site(300); Site s = snapshot ds;"
                  "} }")
        from repro.lang.typechecker import check_program
        from repro.lang.interp import Interpreter
        interp = Interpreter(check_program(source))
        interp.on_snapshot = lambda *args: events.append(args)
        interp.run()
        assert len(events) == 1
        assert events[0][1] == Mode("full_throttle")


class TestModeCases:
    def test_elimination_uses_field_owner_mode(self):
        # r.depth eliminates against r's mode, not the caller's.
        interp = run("""
            Site ds = new Site(300);
            Site s = snapshot ds;
            Sys.print(s.depth);
        """)
        assert interp.output == ["3"]

    def test_mselect_explicit(self):
        interp = run("Site ds = new Site(10);"
                     "Sys.print(mselect(ds.depth, full_throttle));")
        assert interp.output == ["3"]

    def test_default_branch(self):
        interp = run("""
            mcase<int> x = mcase{ managed: 2; default: 9; };
            Sys.print(mselect(x, managed));
            Sys.print(mselect(x, energy_saver));
        """, extra_classes="")
        assert interp.output == ["2", "9"]

    def test_mcase_stored_raw_in_locals(self):
        interp = run("""
            mcase<int> x = mcase{ energy_saver: 1; managed: 2;
                                  full_throttle: 3; };
            Sys.print(mselect(x, energy_saver));
        """, extra_classes="")
        assert interp.output == ["1"]

    def test_elim_stat_counted(self):
        interp = run("Site ds = new Site(100); Site s = snapshot ds;"
                     "int d = s.depth;")
        assert interp.stats.mcase_elims >= 1


class TestDynamicWaterfall:
    AGENT = SITE + """
    class Agent@mode<?X> {
        attributor {
            if (Ext.battery() >= 0.75) { return full_throttle; }
            if (Ext.battery() >= 0.50) { return managed; }
            return energy_saver;
        }
        Agent() { }
        int work(int n) {
            Site ds = new Site(n);
            Site s = snapshot ds [_, X];
            return s.crawl();
        }
    }
    """

    def _crawl(self, battery, count, **kwargs):
        return run(
            f"Agent da = new Agent(); Agent a = snapshot da;"
            f"Sys.print(a.work({count}));",
            extra_classes=self.AGENT,
            platform=_Battery(battery), **kwargs)

    def test_high_battery_big_site_ok(self):
        assert self._crawl(0.9, 300).output == ["3"]

    def test_low_battery_big_site_throws(self):
        with pytest.raises(EnergyException):
            self._crawl(0.6, 300)

    def test_low_battery_small_site_ok(self):
        assert self._crawl(0.6, 100).output == ["2"]

    def test_silent_mode_never_throws(self):
        interp = self._crawl(0.6, 300, options=InterpOptions(silent=True))
        assert interp.output == ["3"]
        assert interp.stats.energy_exceptions == 0

    def test_on_message_dfall_holds(self):
        checks = []
        source = (MODES + self.AGENT +
                  "class Main { void main() {"
                  "Agent da = new Agent(); Agent a = snapshot da;"
                  "Sys.print(a.work(100)); } }")
        from repro.lang.typechecker import check_program
        from repro.lang.interp import Interpreter
        interp = Interpreter(check_program(source),
                             platform=_Battery(0.9))
        interp.on_message = (
            lambda guard, sender, holds: checks.append(holds))
        interp.run()
        assert checks and all(checks)

    def test_baseline_mode_skips_bookkeeping(self):
        interp = self._crawl(0.6, 300,
                             options=InterpOptions(baseline=True))
        # Behaviour preserved (attributor still picks the mode) ...
        assert interp.output == ["3"]
        # ... but no checks or copies happened.
        assert interp.stats.bound_checks == 0
        assert interp.stats.copies == 0


class TestMethodAttributors:
    TOOL = """
    class Tool {
        @mode<?X> int process(int n)
        attributor {
            if (n > 10) { return full_throttle; }
            return energy_saver;
        }
        { return n * 2; }
    }
    """

    def test_method_attributor_runs(self):
        interp = run("Tool t = new Tool(); Sys.print(t.process(3));",
                     extra_classes=self.TOOL)
        assert interp.output == ["6"]

    def test_method_attributor_guards_waterfall(self):
        # A managed-mode caller invoking a method attributed to
        # full_throttle violates the runtime waterfall.
        source = MODES + self.TOOL + """
        class Caller@mode<managed> {
            int go(Tool t) { return t.process(50); }
        }
        class Main {
            void main() {
                Caller c = new Caller();
                Tool t = new Tool();
                Sys.print(c.go(t));
            }
        }
        """
        with pytest.raises(EnergyException):
            run_source(source)

    def test_method_attributor_low_result_allowed(self):
        source = MODES + self.TOOL + """
        class Caller@mode<managed> {
            int go(Tool t) { return t.process(5); }
        }
        class Main {
            void main() {
                Caller c = new Caller();
                Tool t = new Tool();
                Sys.print(c.go(t));
            }
        }
        """
        assert run_source(source).output == ["10"]


class TestGenericModes:
    def test_runtime_generic_inference(self):
        source = MODES + """
        class Data@mode<X> {
            mcase<int> level = mcase{ energy_saver: 1; managed: 2;
                                      full_throttle: 3; };
        }
        class Tool {
            @mode<X> int probe(Data@mode<X> d) { return d.level; }
        }
        class Main {
            void main() {
                Tool t = new Tool();
                Data@mode<managed> d = new Data@mode<managed>();
                Sys.print(t.probe(d));
            }
        }
        """
        assert run_source(source).output == ["2"]

    def test_co_adaptation_listing2(self):
        """Listing 2's co-adaptation: rules adopt the agent's mode."""
        source = MODES + """
        class DepthRule@mode<X> {
            mcase<int> depth = mcase{ energy_saver: 1; managed: 2;
                                      full_throttle: 3; };
        }
        class Agent@mode<?X> {
            attributor {
                if (Ext.battery() >= 0.75) { return full_throttle; }
                if (Ext.battery() >= 0.50) { return managed; }
                return energy_saver;
            }
            Agent() { }
            int work() {
                DepthRule@mode<X> r = new DepthRule@mode<X>();
                return r.depth;
            }
        }
        class Main {
            void main() {
                Agent da = new Agent();
                Agent a = snapshot da;
                Sys.print(a.work());
            }
        }
        """
        interp = run_source(source, platform=_Battery(0.6))
        assert interp.output == ["2"]
        interp = run_source(source, platform=_Battery(0.95))
        assert interp.output == ["3"]
