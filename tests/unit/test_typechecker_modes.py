"""Typechecker unit tests for the ENT-specific rules (paper section 4.1):
T-New, T-Msg/sfall, T-Snapshot, T-MCase, T-ElimCase, generic modes, the
internal/external distinction, and method-level mode characterization."""

import pytest

from repro.core.errors import EntTypeError, WaterfallError
from repro.lang.typechecker import check_program

MODES = "modes { energy_saver <= managed; managed <= full_throttle; }\n"

DYN_SITE = """
class Site@mode<?X> {
    List resources;
    attributor {
        if (resources.size() > 200) { return full_throttle; }
        if (resources.size() > 50) { return managed; }
        return energy_saver;
    }
    Site(int n) {
        this.resources = new List();
        int i = 0;
        while (i < n) { resources.add(i); i = i + 1; }
    }
    mcase<int> depth = mcase{
        energy_saver: 1; managed: 2; full_throttle: 3;
    };
    int crawl() { return resources.size() * depth; }
}
"""


def check(source):
    return check_program(MODES + source)


def check_fails(source, fragment="", error=EntTypeError):
    with pytest.raises(error) as exc_info:
        check(source)
    if fragment:
        assert fragment in str(exc_info.value)
    return exc_info.value


class TestTNew:
    def test_dynamic_class_instantiated_at_question(self):
        check(DYN_SITE + """
        class Main { void main() { Site s = new Site@mode<?>(10); } }
        """)

    def test_dynamic_class_elided_mode_defaults_to_question(self):
        check(DYN_SITE + """
        class Main { void main() { Site s = new Site(10); } }
        """)

    def test_dynamic_class_cannot_be_instantiated_concrete(self):
        check_fails(DYN_SITE + """
        class Main { void main() { Site s = new Site@mode<managed>(10); } }
        """, "must be instantiated at '?'")

    def test_concrete_class_cannot_be_instantiated_dynamic(self):
        check_fails("""
        class Fixed@mode<managed> { }
        class Main { void main() { Fixed f = new Fixed@mode<?>(); } }
        """, "may only instantiate the dynamic parameter")

    def test_instantiation_respects_bounds(self):
        check_fails("""
        class Bounded@mode<managed <= X <= full_throttle> { }
        class Main {
            void main() {
                Bounded b = new Bounded@mode<energy_saver>();
            }
        }
        """, "violates lower bound")

    def test_instantiation_within_bounds(self):
        check("""
        class Bounded@mode<managed <= X <= full_throttle> { }
        class Main {
            void main() {
                Bounded@mode<full_throttle> b =
                    new Bounded@mode<full_throttle>();
            }
        }
        """)

    def test_fixed_mode_class_wrong_mode(self):
        check_fails("""
        class Fixed@mode<managed> { }
        class Main {
            void main() { Fixed f = new Fixed@mode<energy_saver>(); }
        }
        """, "fixed at mode")

    def test_mode_arg_count_mismatch(self):
        check_fails("""
        class Two@mode<X, Y> { }
        class Main { void main() { Two t = new Two@mode<managed>(); } }
        """, "mode argument")


class TestWaterfall:
    def test_downhill_allowed(self):
        check("""
        class Light@mode<energy_saver> { int f() { return 1; } }
        class Heavy@mode<full_throttle> {
            int go(Light l) { return l.f(); }
        }
        class Main { void main() { } }
        """)

    def test_uphill_rejected(self):
        check_fails("""
        class Light@mode<energy_saver> {
            int go(Heavy h) { return h.f(); }
        }
        class Heavy@mode<full_throttle> { int f() { return 1; } }
        class Main { void main() { } }
        """, "waterfall", WaterfallError)

    def test_equal_mode_allowed(self):
        check("""
        class A1@mode<managed> { int f() { return 1; } }
        class B1@mode<managed> { int go(A1 a) { return a.f(); } }
        class Main { void main() { } }
        """)

    def test_main_is_top(self):
        # Main runs at ⊤, so it may message anything.
        check("""
        class Heavy@mode<full_throttle> { int f() { return 1; } }
        class Main {
            void main() { Heavy h = new Heavy(); int x = h.f(); }
        }
        """)

    def test_messaging_dynamic_rejected(self):
        check_fails(DYN_SITE + """
        class Main {
            void main() { Site s = new Site(10); int x = s.crawl(); }
        }
        """, "snapshot it first", WaterfallError)

    def test_self_messaging_always_allowed(self):
        check(DYN_SITE.replace(
            "int crawl() { return resources.size() * depth; }",
            "int crawl() { return helper(); } "
            "int helper() { return this.helper2(); } "
            "int helper2() { return depth; }") + """
        class Main { void main() { } }
        """)

    def test_generic_var_leq_itself(self):
        check("""
        class Pair@mode<X> {
            Pair@mode<X> other;
            int f() { return other.f(); }
        }
        class Main { void main() { } }
        """)

    def test_generic_var_uphill_rejected(self):
        check_fails("""
        class Holder@mode<X> {
            Heavy h;
            int f() { return h.f(); }
        }
        class Heavy@mode<full_throttle> { int f() { return 1; } }
        class Main { void main() { } }
        """, "waterfall", WaterfallError)

    def test_bounded_var_can_message_its_lower_bound(self):
        check("""
        class Worker@mode<managed <= X <= full_throttle> {
            Helper h;
            int f() { return h.f(); }
        }
        class Helper@mode<managed> { int f() { return 1; } }
        class Main { void main() { } }
        """)


class TestSnapshot:
    def test_snapshot_gives_usable_mode(self):
        check(DYN_SITE + """
        class Main {
            void main() {
                Site ds = new Site(10);
                Site s = snapshot ds;
                int x = s.crawl();
            }
        }
        """)

    def test_snapshot_requires_dynamic(self):
        check_fails("""
        class Fixed@mode<managed> { }
        class Main {
            void main() { Fixed f = new Fixed(); Fixed g = snapshot f; }
        }
        """, "dynamic mode")

    def test_snapshot_on_primitive_rejected(self):
        check_fails("""
        class Main { void main() { int x = snapshot 3; } }
        """.replace("snapshot 3", "snapshot x"), "")

    def test_bounded_snapshot_in_class_scope(self):
        check(DYN_SITE + """
        class Agent@mode<?X> {
            attributor { return managed; }
            int work() {
                Site ds = new Site(10);
                Site s = snapshot ds [_, X];
                return s.crawl();
            }
        }
        class Main { void main() { } }
        """)

    def test_unbounded_snapshot_messaging_from_mode_var_rejected(self):
        # Without the [_, X] bound, the snapshotted Site's fresh mode is
        # unconstrained, so X-mode Agent cannot message it — the
        # debuggability scenario of section 6.3.
        check_fails(DYN_SITE + """
        class Agent@mode<?X> {
            attributor { return managed; }
            int work() {
                Site ds = new Site(10);
                Site s = snapshot ds;
                return s.crawl();
            }
        }
        class Main { void main() { } }
        """, "waterfall", WaterfallError)

    def test_snapshot_bound_must_be_mode_or_var(self):
        check_fails(DYN_SITE + """
        class Main {
            void main() {
                Site ds = new Site(10);
                Site s = snapshot ds [_, nonsense];
            }
        }
        """, "neither a declared mode nor a mode variable")

    def test_dynamic_class_requires_attributor(self):
        check_fails("""
        class NoAttr@mode<?> { }
        class Main { void main() { } }
        """, "must declare (or inherit) an attributor")

    def test_static_class_with_attributor_rejected(self):
        check_fails("""
        class Odd@mode<managed> { attributor { return managed; } }
        class Main { void main() { } }
        """, "not dynamic")


class TestMCase:
    def test_mcase_field_implicit_elimination(self):
        check(DYN_SITE + """
        class Main {
            void main() {
                Site ds = new Site(10);
                Site s = snapshot ds;
                int d = s.depth;
            }
        }
        """)

    def test_mcase_elim_on_dynamic_rejected(self):
        check_fails(DYN_SITE + """
        class Main {
            void main() { Site ds = new Site(10); int d = ds.depth; }
        }
        """, "snapshot")

    def test_mselect_explicit(self):
        check(DYN_SITE + """
        class Main {
            void main() {
                Site ds = new Site(10);
                int d = mselect(ds.depth, managed);
            }
        }
        """)

    def test_mcase_coverage_required(self):
        check_fails("""
        class Main {
            void main() { mcase<int> x = mcase{ managed: 1; }; }
        }
        """, "does not cover")

    def test_mcase_default_satisfies_coverage(self):
        check("""
        class Main {
            void main() {
                mcase<int> x = mcase{ managed: 1; default: 0; };
            }
        }
        """)

    def test_mcase_duplicate_branch(self):
        check_fails("""
        class Main {
            void main() {
                mcase<int> x = mcase{ managed: 1; managed: 2; default: 0; };
            }
        }
        """, "duplicate")

    def test_mcase_unknown_mode(self):
        check_fails("""
        class Main {
            void main() { mcase<int> x = mcase{ warp_speed: 1; }; }
        }
        """, "not a declared mode")

    def test_mcase_branch_type_mismatch(self):
        check_fails("""
        class Main {
            void main() {
                mcase<int> x = mcase{ energy_saver: 1; managed: "two";
                                      full_throttle: 3; };
            }
        }
        """, "not assignable")

    def test_mcase_assignment_keeps_raw(self):
        check("""
        class Holder@mode<X> {
            mcase<int> setting = mcase{ energy_saver: 1; managed: 2;
                                        full_throttle: 3; };
            void replace() {
                setting = mcase{ energy_saver: 10; managed: 20;
                                 full_throttle: 30; };
            }
        }
        class Main { void main() { } }
        """)

    def test_mselect_on_non_mcase(self):
        check_fails("""
        class Main { void main() { int x = mselect(3, managed); } }
        """, "mselect requires")


class TestMethodLevelModes:
    def test_override_blocks_low_sender(self):
        check_fails(DYN_SITE.replace(
            "int crawl() { return resources.size() * depth; }",
            "int crawl() { return 1; } "
            "@mode<full_throttle> int mediaCrawl() { return 2; }") + """
        class Low@mode<energy_saver> {
            int go(Site s) { return s.mediaCrawl(); }
        }
        class Main { void main() { } }
        """, "waterfall", WaterfallError)

    def test_override_allows_high_sender_on_dynamic_receiver(self):
        check(DYN_SITE.replace(
            "int crawl() { return resources.size() * depth; }",
            "int crawl() { return 1; } "
            "@mode<full_throttle> int mediaCrawl() { return 2; }") + """
        class High@mode<full_throttle> {
            int go(Site s) { return s.mediaCrawl(); }
        }
        class Main { void main() { } }
        """)

    def test_generic_method_inference(self):
        check("""
        class Data@mode<X> { int size; }
        class Tool {
            @mode<X> int process(Data@mode<X> d) { return d.size; }
        }
        class Main {
            void main() {
                Tool t = new Tool();
                Data@mode<energy_saver> d = new Data@mode<energy_saver>();
                int x = t.process(d);
            }
        }
        """)

    def test_generic_method_inference_failure(self):
        check_fails("""
        class Tool {
            @mode<X> int process(int n) { return n; }
        }
        class Main {
            void main() { Tool t = new Tool(); int x = t.process(3); }
        }
        """, "cannot infer")

    def test_method_attributor_requires_dynamic_annotation(self):
        check_fails("""
        class Tool {
            int f() attributor { return managed; } { return 1; }
        }
        class Main { void main() { } }
        """, "attributor")

    def test_method_attributor_wellformed(self):
        check("""
        class Tool {
            @mode<?X> int f(int n)
            attributor {
                if (n > 10) { return full_throttle; }
                return energy_saver;
            }
            { return n; }
        }
        class Main {
            void main() { Tool t = new Tool(); int x = t.f(3); }
        }
        """)

    def test_dynamic_method_annotation_without_attributor(self):
        check_fails("""
        class Tool { @mode<?X> int f() { return 1; } }
        class Main { void main() { } }
        """, "no attributor")


class TestAttributorRules:
    def test_attributor_must_return_mode_on_all_paths(self):
        check_fails("""
        class D@mode<?> {
            int n;
            attributor { if (n > 1) { return managed; } }
        }
        class Main { void main() { } }
        """, "must return a mode")

    def test_attributor_may_read_fields(self):
        check("""
        class D@mode<?> {
            int n;
            attributor {
                if (n > 10) { return full_throttle; }
                return energy_saver;
            }
        }
        class Main { void main() { } }
        """)

    def test_attributor_cannot_message_mode_carrying_objects(self):
        check_fails("""
        class Helper@mode<managed> { int f() { return 1; } }
        class D@mode<?> {
            Helper h;
            attributor {
                if (h.f() > 0) { return managed; }
                return energy_saver;
            }
        }
        class Main { void main() { } }
        """, "attributor", WaterfallError)

    def test_attributor_may_call_natives(self):
        check("""
        class D@mode<?> {
            attributor {
                if (Ext.battery() >= 0.5) { return managed; }
                return energy_saver;
            }
        }
        class Main { void main() { } }
        """)


class TestNonEquivocation:
    def test_mode_args_invariant(self):
        # C<es> is not assignable to C<ft>: aliasing cannot equivocate.
        check_fails("""
        class Box@mode<X> { }
        class Main {
            void main() {
                Box@mode<energy_saver> a = new Box@mode<energy_saver>();
                Box@mode<full_throttle> b = a;
            }
        }
        """, "not assignable")

    def test_same_mode_assignable(self):
        check("""
        class Box@mode<X> { }
        class Main {
            void main() {
                Box@mode<managed> a = new Box@mode<managed>();
                Box@mode<managed> b = a;
            }
        }
        """)

    def test_subclass_mode_passthrough(self):
        check("""
        class Base@mode<X> { int f() { return 1; } }
        class Derived@mode<X> extends Base@mode<X> { }
        class Main {
            void main() {
                Base@mode<managed> b = new Derived@mode<managed>();
                int x = b.f();
            }
        }
        """)
