"""Edge-case tests for the embedded runtime: context restoration,
exception safety, thermal runtimes, and Ext binding."""

import pytest

from repro.core.errors import EnergyException, EntError
from repro.core.modes import TOP, Mode
from repro.platform import SystemA
from repro.runtime import EntRuntime, mode_of


@pytest.fixture
def rt():
    return EntRuntime.standard()


def make_worker(rt, mode="managed"):
    @rt.static(mode)
    class Worker:
        def ping(self):
            return rt.current_mode.name

    return Worker


class TestContextRestoration:
    def test_booted_restores_on_exception(self, rt):
        with pytest.raises(ValueError):
            with rt.booted("managed"):
                raise ValueError("app error")
        assert rt.current_mode is TOP

    def test_nested_booted_unwinds(self, rt):
        with rt.booted("full_throttle"):
            with rt.booted("managed"):
                assert rt.current_mode == Mode("managed")
            assert rt.current_mode == Mode("full_throttle")
        assert rt.current_mode is TOP

    def test_method_failure_restores_mode_stack(self, rt):
        @rt.static("managed")
        class Flaky:
            def explode(self):
                raise RuntimeError("kernel bug")

        flaky = Flaky()
        depth = len(rt._mode_stack)
        with pytest.raises(RuntimeError):
            flaky.explode()
        assert len(rt._mode_stack) == depth

    def test_closure_mode_visible_inside_method(self, rt):
        Worker = make_worker(rt, "energy_saver")
        with rt.booted("full_throttle"):
            assert Worker().ping() == "energy_saver"

    def test_top_level_runs_at_top(self, rt):
        Worker = make_worker(rt, "full_throttle")
        assert Worker().ping() == "full_throttle"
        assert rt.current_mode is TOP


class TestExtAndPlatform:
    def test_rebinding_platform(self, rt):
        a = SystemA(seed=1)
        a.battery.set_fraction(0.2)
        rt.bind_platform(a)
        assert rt.ext.battery() == pytest.approx(0.2)
        b = SystemA(seed=2)
        rt.bind_platform(b)
        assert rt.ext.battery() == pytest.approx(1.0)

    def test_ext_now_tracks_clock(self):
        platform = SystemA(seed=1)
        rt = EntRuntime.standard(platform)
        platform.cpu_work(1000.0)
        assert rt.ext.now() > 0


class TestModeHelpers:
    def test_mode_accepts_mode_instance(self, rt):
        assert rt.mode(Mode("managed")) == Mode("managed")

    def test_unknown_mode_rejected(self, rt):
        with pytest.raises(Exception):
            rt.mode("turbo")

    def test_mode_of_unmanaged_object(self, rt):
        assert mode_of(object()) is None

    def test_booted_accepts_mode_instance(self, rt):
        with rt.booted(Mode("managed")) as mode:
            assert mode == Mode("managed")


class TestSnapshotArgumentValidation:
    def test_snapshot_static_instance_rejected(self, rt):
        Worker = make_worker(rt)
        with pytest.raises(EntError):
            rt.snapshot(Worker())

    def test_bounds_must_be_declared_modes(self, rt):
        @rt.dynamic
        class D:
            def attributor(self):
                return "managed"

        with pytest.raises(Exception):
            rt.snapshot(D(), upper="ludicrous")

    def test_snapshot_keeps_instance_attributes(self, rt):
        @rt.dynamic
        class D:
            def __init__(self):
                self.payload = [1, 2]

            def attributor(self):
                return "managed"

        original = D()
        copy_one = rt.snapshot(original)       # lazy tag (same object)
        copy_two = rt.snapshot(original)       # physical copy
        assert copy_two.payload is original.payload  # shallow


class TestThermalRuntimeIsolation:
    def test_thermal_and_standard_lattices_independent(self):
        battery_rt = EntRuntime.standard()
        thermal_rt = EntRuntime.thermal()
        assert Mode("safe") in thermal_rt.lattice
        assert Mode("safe") not in battery_rt.lattice

    def test_mode_case_against_thermal_runtime(self):
        rt = EntRuntime.thermal()
        case = rt.mcase({"overheating": 3, "hot": 2, "safe": 1})
        assert case.select(Mode("hot")) == 2

    def test_standard_case_rejects_thermal_mode_name(self):
        rt = EntRuntime.standard()
        with pytest.raises(EntError):
            rt.mcase({"safe": 1})


class TestStatsIsolation:
    def test_two_runtimes_do_not_share_stats(self):
        a = EntRuntime.standard()
        b = EntRuntime.standard()

        @a.dynamic
        class D:
            def attributor(self):
                return "managed"

        a.snapshot(D())
        assert a.stats.snapshots == 1
        assert b.stats.snapshots == 0

    def test_wrapped_flag_marks_methods(self, rt):
        Worker = make_worker(rt)
        assert getattr(Worker.ping, "_ent_wrapped", False)

    def test_private_methods_not_wrapped(self, rt):
        @rt.static("managed")
        class Shy:
            def _hidden(self):
                return 1

        assert not getattr(Shy._hidden, "_ent_wrapped", False)
