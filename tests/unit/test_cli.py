"""Unit tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import main

GOOD = """
modes { energy_saver <= managed; managed <= full_throttle; }
class Probe@mode<?X> {
    int n;
    attributor {
        if (n > 10) { return full_throttle; }
        return energy_saver;
    }
    Probe(int n) { this.n = n; }
    int get() { return n; }
}
class Main {
    void main() {
        Probe p = snapshot (new Probe@mode<?>(5));
        Sys.print("n=" + p.get());
    }
}
"""

BAD_TYPES = """
modes { lo <= hi; }
class Heavy@mode<hi> { int f() { return 1; } }
class Low@mode<lo> { int go(Heavy h) { return h.f(); } }
class Main { void main() { } }
"""

BAD_SYNTAX = "class { oops"

THROWING = """
modes { lo <= hi; }
class D@mode<?X> {
    attributor { return hi; }
    D() { }
}
class Main {
    void main() { D d = snapshot (new D@mode<?>()) [_, lo]; }
}
"""


@pytest.fixture
def program(tmp_path):
    def write(source, name="prog.ent"):
        path = tmp_path / name
        path.write_text(source)
        return str(path)

    return write


class TestCheck:
    def test_ok(self, program, capsys):
        assert main(["check", program(GOOD)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_type_error(self, program, capsys):
        assert main(["check", program(BAD_TYPES)]) == 1
        assert "waterfall" in capsys.readouterr().err

    def test_syntax_error(self, program, capsys):
        assert main(["check", program(BAD_SYNTAX)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["check", "/no/such/file.ent"]) == 2


class TestRun:
    def test_runs_and_prints(self, program, capsys):
        assert main(["run", program(GOOD)]) == 0
        assert "n=5" in capsys.readouterr().out

    def test_stats_flag(self, program, capsys):
        assert main(["run", program(GOOD), "--stats"]) == 0
        err = capsys.readouterr().err
        stats = json.loads(err.strip().splitlines()[-1])
        assert stats["snapshots"] == 1
        assert "battery" not in stats

    def test_platform_flag(self, program, capsys):
        assert main(["run", program(GOOD), "--system", "A",
                     "--battery", "0.5", "--stats"]) == 0
        err = capsys.readouterr().err
        stats = json.loads(err.strip().splitlines()[-1])
        assert 0.0 < stats["battery"] <= 0.5
        assert stats["energy_j"] >= 0.0

    def test_energy_exception_exit_code(self, program, capsys):
        assert main(["run", program(THROWING)]) == 3
        assert "EnergyException" in capsys.readouterr().err

    def test_silent_flag_suppresses(self, program):
        assert main(["run", program(THROWING), "--silent"]) == 0

    def test_fuel_flag(self, program, capsys):
        looping = GOOD.replace('Sys.print("n=" + p.get());',
                               "while (true) { }")
        path = program(looping, "loop.ent")
        assert main(["run", path, "--fuel", "5000"]) == 1
        assert "exceeded" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", ["walk", "compiled", "vm"])
    def test_engine_flag(self, program, capsys, engine):
        assert main(["run", program(GOOD), "--engine", engine]) == 0
        assert "n=5" in capsys.readouterr().out

    def test_engine_vm_with_toggles(self, program, capsys):
        assert main(["run", program(GOOD), "--engine", "vm",
                     "--no-elide", "--no-inline-caches",
                     "--stats"]) == 0
        captured = capsys.readouterr()
        assert "n=5" in captured.out
        stats = json.loads(captured.err.strip().splitlines()[-1])
        assert stats["snapshots"] == 1

    def test_compile_flag_is_engine_alias(self, program, capsys):
        assert main(["run", program(GOOD), "--compile"]) == 0
        assert "n=5" in capsys.readouterr().out

    def test_explicit_engine_beats_compile_alias(self, program, capsys):
        assert main(["run", program(GOOD), "--engine", "vm",
                     "--compile"]) == 0
        assert "n=5" in capsys.readouterr().out


class TestDisasm:
    def test_disasm_annotates_checks(self, program, capsys):
        assert main(["disasm", program(GOOD), "--no-elide"]) == 0
        out = capsys.readouterr().out
        assert "Probe.<attributor>" in out
        assert "Main.main" in out
        assert ";; DFALL_CHECK" in out

    def test_disasm_shows_elision_handoff(self, program, capsys):
        assert main(["disasm", program(GOOD)]) == 0
        out = capsys.readouterr().out
        assert ("elided by repro.analysis" in out
                or ";; DFALL_CHECK" in out)

    def test_disasm_bad_program(self, program, capsys):
        assert main(["disasm", program("class { oops",
                                       "bad.ent")]) == 1


class TestObs:
    def test_trace_jsonl(self, program, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(["run", program(GOOD), "--system", "A",
                     "--trace", str(trace)]) == 0
        lines = trace.read_text().strip().splitlines()
        assert lines
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "snapshot" in kinds
        assert "attributor" in kinds

    def test_trace_chrome_is_valid_json(self, program, capsys, tmp_path):
        trace = tmp_path / "t.json"
        assert main(["run", program(GOOD), "--system", "A",
                     "--trace", str(trace),
                     "--trace-format", "chrome"]) == 0
        data = json.loads(trace.read_text())
        events = data["traceEvents"]
        assert events
        assert all("ph" in e and "pid" in e for e in events)

    def test_obs_report(self, program, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(["run", program(GOOD), "--system", "A",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["obs", "report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "trace report" in out
        assert "Counters:" in out

    def test_obs_convert(self, program, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        out_path = tmp_path / "t.json"
        assert main(["run", program(GOOD), "--system", "A",
                     "--trace", str(trace)]) == 0
        assert main(["obs", "convert", str(trace), str(out_path)]) == 0
        assert json.loads(out_path.read_text())["traceEvents"]


class TestProfile:
    @pytest.mark.parametrize("engine", ["walk", "compiled", "vm"])
    def test_profile_reports_hot_labels(self, program, capsys, engine):
        assert main(["profile", program(GOOD), "--engine", engine,
                     "--checks"]) == 0
        out = capsys.readouterr().out
        assert f"Profile (engine={engine})" in out
        assert "Hot labels:" in out
        assert "Check sites:" in out
        assert "Check totals:" in out
        assert "static-vs-observed clean" in out
        if engine == "vm":
            assert "op." in out
        else:
            assert "node." in out

    def test_profile_vm_reports_ic_and_check_sites(self, program, capsys):
        assert main(["profile", program(GOOD), "--engine", "vm",
                     "--checks"]) == 0
        out = capsys.readouterr().out
        assert "Call sites:" in out
        assert "ic hit rate" in out
        assert "snapshot_bound@" in out

    def test_profile_json_payload(self, program, capsys):
        assert main(["profile", program(GOOD), "--engine", "vm",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profile"]["engine"] == "vm"
        assert payload["profile"]["labels"]
        assert payload["static_vs_observed"]["clean"] is True

    def test_profile_no_elide_skips_diff(self, program, capsys):
        assert main(["profile", program(GOOD), "--no-elide",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "static_vs_observed" not in payload

    def test_profile_energy_column(self, program, capsys):
        assert main(["profile", program(GOOD), "--engine", "vm",
                     "--energy", "--system", "A"]) == 0
        assert "joules" in capsys.readouterr().out

    def test_profile_out_formats(self, program, capsys, tmp_path):
        path = program(GOOD)
        out = tmp_path / "p.json"
        assert main(["profile", path, "--out", str(out)]) == 0
        assert json.loads(out.read_text())["labels"]
        collapsed = tmp_path / "p.collapsed"
        assert main(["profile", path, "--out", str(collapsed),
                     "--format", "collapsed"]) == 0
        assert collapsed.read_text().strip()
        chrome = tmp_path / "p.chrome.json"
        assert main(["profile", path, "--out", str(chrome),
                     "--format", "chrome"]) == 0
        assert json.loads(chrome.read_text())["traceEvents"]
        capsys.readouterr()

    def test_profile_energy_exception_exit_code(self, program, capsys):
        assert main(["profile", program(THROWING)]) == 3
        captured = capsys.readouterr()
        assert "EnergyException" in captured.err
        assert "Profile" in captured.out


class TestPrettyAndTokens:
    def test_pretty_reparses(self, program, capsys, tmp_path):
        assert main(["pretty", program(GOOD)]) == 0
        printed = capsys.readouterr().out
        again = tmp_path / "again.ent"
        again.write_text(printed)
        assert main(["check", str(again)]) == 0

    def test_tokens(self, program, capsys):
        assert main(["tokens", program(GOOD)]) == 0
        out = capsys.readouterr().out
        assert "KW_SNAPSHOT" in out
        assert "EOF" in out
