"""Unit tests for the ENT lexer."""

import pytest

from repro.core.errors import EntSyntaxError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def texts(source):
    return [t.text for t in tokenize(source)][:-1]


class TestBasics:
    def test_empty(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifiers_and_keywords(self):
        assert kinds("foo class snapshot") == [
            TokenKind.IDENT, TokenKind.KW_CLASS, TokenKind.KW_SNAPSHOT]

    def test_keyword_prefix_is_ident(self):
        assert kinds("classy") == [TokenKind.IDENT]

    def test_underscore(self):
        assert kinds("_") == [TokenKind.UNDERSCORE]
        assert kinds("_x") == [TokenKind.IDENT]

    def test_integers(self):
        tokens = tokenize("42 0 123456")
        assert [t.value for t in tokens[:-1]] == [42, 0, 123456]

    def test_floats(self):
        tokens = tokenize("0.75 1e3 2.5E-2")
        assert [t.kind for t in tokens[:-1]] == [TokenKind.FLOAT] * 3
        assert tokens[0].value == pytest.approx(0.75)
        assert tokens[1].value == pytest.approx(1000.0)
        assert tokens[2].value == pytest.approx(0.025)

    def test_int_then_dot_method(self):
        # `resources.length` style: no float confusion.
        assert kinds("x.size") == [TokenKind.IDENT, TokenKind.DOT,
                                   TokenKind.IDENT]

    def test_strings(self):
        token = tokenize('"hello world"')[0]
        assert token.kind is TokenKind.STRING
        assert token.value == "hello world"

    def test_string_escapes(self):
        token = tokenize(r'"a\nb\t\"c\\"')[0]
        assert token.value == 'a\nb\t"c\\'

    def test_unterminated_string(self):
        with pytest.raises(EntSyntaxError):
            tokenize('"oops')

    def test_invalid_escape(self):
        with pytest.raises(EntSyntaxError):
            tokenize(r'"\q"')

    def test_operators(self):
        assert kinds("<= >= == != && || < > = ! @ ?") == [
            TokenKind.LE, TokenKind.GE, TokenKind.EQ, TokenKind.NE,
            TokenKind.AND, TokenKind.OR, TokenKind.LT, TokenKind.GT,
            TokenKind.ASSIGN, TokenKind.NOT, TokenKind.AT,
            TokenKind.QUESTION]

    def test_unexpected_character(self):
        with pytest.raises(EntSyntaxError):
            tokenize("#")


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\n b") == [TokenKind.IDENT,
                                             TokenKind.IDENT]

    def test_block_comment(self):
        assert texts("a /* stuff \n more */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(EntSyntaxError):
            tokenize("/* never ends")


class TestSpans:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].span.line == 1 and tokens[0].span.column == 1
        assert tokens[1].span.line == 2 and tokens[1].span.column == 3

    def test_filename(self):
        token = tokenize("x", filename="prog.ent")[0]
        assert "prog.ent" in str(token.span)
