"""Edge-case tests for the native library surface."""

import pytest

from repro.core.errors import EntRuntimeError
from repro.lang.interp import run_source

MODES = "modes { energy_saver <= managed; }\n"


def run(body, **kwargs):
    return run_source(
        MODES + "class Main { void main() { " + body + " } }", **kwargs)


class TestSysEdges:
    def test_rand_int_positive_bound(self):
        with pytest.raises(EntRuntimeError):
            run("int x = Sys.randInt(0);")

    def test_parse_int_rejects_garbage(self):
        with pytest.raises(EntRuntimeError):
            run('int x = Sys.parseInt("abc");')

    def test_parse_int_strips_whitespace(self):
        interp = run('Sys.print(Sys.parseInt("  42 "));')
        assert interp.output == ["42"]

    def test_str_of_everything(self):
        interp = run('Sys.print(Sys.str(null) + "/" + Sys.str(true) '
                     '+ "/" + Sys.str(2.0));')
        assert interp.output == ["null/true/2.0"]

    def test_time_advances_with_sleep(self):
        interp = run("double a = Sys.time(); Sys.sleep(100); "
                     "Sys.print(Sys.time() > a);")
        assert interp.output == ["true"]


class TestMathEdges:
    def test_sqrt_negative(self):
        with pytest.raises(EntRuntimeError):
            run("double x = Math.sqrt(0.0 - 1.0);")

    def test_log_nonpositive(self):
        with pytest.raises(EntRuntimeError):
            run("double x = Math.log(0);")

    def test_min_max_int_preserving(self):
        interp = run("Sys.print(Math.min(3, 5)); "
                     "Sys.print(Math.max(3.0, 5));")
        assert interp.output == ["3", "5.0"]

    def test_pow(self):
        interp = run("Sys.print(Math.pow(2, 10));")
        assert interp.output == ["1024.0"]

    def test_floor_ceil_negative(self):
        interp = run("Sys.print(Math.floor(0.0 - 1.5)); "
                     "Sys.print(Math.ceil(0.0 - 1.5));")
        assert interp.output == ["-2", "-1"]


class TestListEdges:
    def test_set_out_of_range(self):
        with pytest.raises(EntRuntimeError):
            run("List l = new List(); l.set(0, 1);")

    def test_remove_out_of_range(self):
        with pytest.raises(EntRuntimeError):
            run("List l = [1]; l.remove(5);")

    def test_add_all(self):
        interp = run("List a = [1, 2]; List b = [3]; b.addAll(a); "
                     "Sys.print(b.size());")
        assert interp.output == ["3"]

    def test_contains_uses_value_equality_for_prims(self):
        interp = run('List l = ["x", "y"]; Sys.print(l.contains("x"));')
        assert interp.output == ["true"]

    def test_contains_identity_for_objects(self):
        source = MODES + """
        class Box { }
        class Main {
            void main() {
                List l = new List();
                l.add(new Box());
                Sys.print(l.contains(new Box()));
            }
        }
        """
        assert run_source(source).output == ["false"]

    def test_index_of_missing(self):
        interp = run("List l = [1, 2]; Sys.print(l.indexOf(9));")
        assert interp.output == ["-1"]


class TestStringEdges:
    def test_substring_bounds(self):
        with pytest.raises(EntRuntimeError):
            run('String s = "abc".substring(2, 1);')

    def test_char_at_bounds(self):
        with pytest.raises(EntRuntimeError):
            run('String s = "abc".charAt(5);')

    def test_split_empty_separator(self):
        with pytest.raises(EntRuntimeError):
            run('List l = "abc".split("");')

    def test_ends_with(self):
        interp = run('Sys.print("photo.jpeg".endsWith(".jpeg"));')
        assert interp.output == ["true"]

    def test_index_of(self):
        interp = run('Sys.print("banana".indexOf("na"));')
        assert interp.output == ["2"]

    def test_equals_cross_type(self):
        interp = run('Sys.print("1".equals(1));')
        assert interp.output == ["false"]

    def test_empty_string_hashcode(self):
        interp = run('Sys.print("".hashCode());')
        assert interp.output == ["0"]

    def test_hashcode_overflow_wraps_like_java(self):
        # A long string exercises the 32-bit wrap-around.
        interp = run('Sys.print("aaaaaaaaaaaaaaaaaaaa".hashCode());')
        value = int(interp.output[0])
        assert -(2 ** 31) <= value < 2 ** 31


class TestExtBinding:
    def test_defaults_without_platform(self):
        interp = run("Sys.print(Ext.battery()); "
                     "Sys.print(Ext.temperature());")
        assert interp.output == ["1.0", "45.0"]

    def test_bound_platform_values(self):
        from repro.platform import SystemA
        platform = SystemA(seed=1)
        platform.battery.set_fraction(0.25)
        interp = run("Sys.print(Ext.battery() < 0.3);",
                     platform=platform)
        assert interp.output == ["true"]
