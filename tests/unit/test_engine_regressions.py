"""Regression tests for the latent engine bugs swept alongside the
trace-JIT tier:

* ``id()``-keyed code caches (``VM._codes``/``_expr_codes``, the
  interpreter's ``_body_cache``/``_param_wants``/``_init_code_cache``)
  could alias after the garbage collector reused an address — a dead
  AST node's code could run for a brand-new node with the same ``id``.
  The fix pins every cached key's node with a strong reference; these
  tests assert the pin invariant directly and hammer the build-run-drop
  cycle that used to recycle addresses.
* ``VM.call_body`` silently truncated over-arity argument lists where
  every other engine raised; all four engines now raise the same
  ``StuckError``.
* Inline caches grew without bound at megamorphic sites; they are now
  capped at the profiler's mega threshold with extra receiver classes
  dispatching uncached.
"""

import gc

import pytest

from repro.core.errors import StuckError
from repro.lang import ast_nodes as ast
from repro.lang.bytecode import CallSite
from repro.lang.interp import Interpreter, InterpOptions, NullPlatform
from repro.lang.typechecker import check_program
from repro.obs.prof import Profiler, ic_class

ENGINES = ("walk", "compiled", "vm", "jit")

HEADER = "modes { low <= mid; mid <= high; }\n"


def _interp(source, engine, **opts):
    return Interpreter(check_program(source), platform=NullPlatform(),
                       options=InterpOptions(engine=engine, fuel=500_000,
                                             **opts))


# ----------------------------------------------------------------------
# id()-keyed caches


_COUNTING = HEADER + """
class Box@mode<high> {
    int seed;
    int bonus = 7;
    Box(int seed) { this.seed = seed; }
    int get() { return seed + bonus; }
}
class Main {
    void main() {
        int total = 0;
        int i = 0;
        while (i < 30) { total = total + new Box(i).get(); i = i + 1; }
        Sys.print(total);
    }
}
"""


@pytest.mark.parametrize("engine", ENGINES)
def test_build_and_drop_programs_in_a_loop(engine):
    """The historical failure mode: typecheck, run, drop, and rebuild
    programs so the allocator recycles AST-node addresses.  Each fresh
    program must print its own answer, never a stale cache's."""
    expected = str(sum(i + 7 for i in range(30)))
    for _ in range(12):
        interp = _interp(_COUNTING, engine)
        interp.run()
        assert interp.output == [expected]
        del interp
        gc.collect()


@pytest.mark.parametrize("engine", ["vm", "jit"])
def test_vm_code_caches_pin_their_keys(engine):
    """Every ``id()`` key in the VM's code caches must be backed by a
    strong reference in the pin list — otherwise the key could outlive
    its node and alias a reused address."""
    interp = _interp(_COUNTING, engine)
    interp.run()
    vm = interp._vm
    pinned = {id(obj) for obj in vm._pins}
    assert vm._codes, "the run should have lowered at least one body"
    assert set(vm._codes.keys()) <= pinned
    assert {key[0] for key in vm._expr_codes.keys()} <= pinned


@pytest.mark.parametrize("engine", ["walk", "compiled"])
def test_interpreter_caches_pin_their_keys(engine):
    interp = _interp(_COUNTING, engine)
    interp.run()
    pinned = {id(obj) for obj in interp._cache_pins}
    assert set(interp._param_wants.keys()) <= pinned
    assert set(interp._body_cache.keys()) <= pinned
    assert {key[0] for key in interp._init_code_cache.keys()} <= pinned


# ----------------------------------------------------------------------
# Arity mismatches


_ARITY = HEADER + """
class Adder@mode<high> {
    Adder() { }
    int add(int a, int b) { return a + b; }
}
class Main {
    void main() {
        Adder x = new Adder();
        Sys.print(x.add(3, 4));
    }
}
"""


def _mutated_arity_program(extra):
    """Typecheck the well-formed program, then grow or shrink the
    ``x.add(3, 4)`` argument list behind the typechecker's back (the
    static checker would reject it, so runtime arity blame can only be
    tested on a mutated AST)."""
    checked = check_program(_ARITY)
    call = None
    for cls in checked.program.classes:
        for method in cls.methods:
            for node in ast_walk(method.body):
                if isinstance(node, ast.MethodCall) and \
                        node.name == "add":
                    call = node
    assert call is not None
    if extra > 0:
        for _ in range(extra):
            call.args.append(ast.IntLit(value=99))
    else:
        del call.args[extra:]
    return checked


def ast_walk(node):
    yield node
    for value in vars(node).values():
        if isinstance(value, ast.Expr) or isinstance(value, ast.Stmt):
            yield from ast_walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, (ast.Expr, ast.Stmt)):
                    yield from ast_walk(item)


@pytest.mark.parametrize("extra", [2, -1], ids=["over", "under"])
def test_arity_mismatch_agrees_across_engines(extra):
    """Over- and under-application must raise the same ``StuckError``
    with the same message on all four engines — the VM used to
    silently truncate extra arguments."""
    messages = []
    for engine in ENGINES:
        checked = _mutated_arity_program(extra)
        interp = Interpreter(checked, platform=NullPlatform(),
                             options=InterpOptions(engine=engine,
                                                   fuel=500_000))
        if engine == "jit":
            interp._vm._hot_call = 1
            interp._vm._hot_loop = 1
        with pytest.raises(StuckError) as excinfo:
            interp.run()
        assert interp.output == []
        messages.append(str(excinfo.value))
    assert len(set(messages)) == 1, messages
    assert "expects 2 argument(s)" in messages[0]
    assert f"got {2 + extra}" in messages[0]


# ----------------------------------------------------------------------
# Inline-cache cap


def _mega_program(n_classes):
    classes = "".join(
        f"class Shape{i}@mode<high> extends Shape@mode<high> {{\n"
        f"    Shape{i}() {{ }}\n"
        f"    int area() {{ return {i + 1}; }}\n"
        f"}}\n" for i in range(n_classes))
    dispatch = "".join(
        f"        total = total + this.measure(new Shape{i}());\n"
        for i in range(n_classes))
    return (HEADER + """
class Shape@mode<high> {
    Shape() { }
    int area() { return 0; }
}
""" + classes + """
class Main {
    int measure(Shape s) { return s.area(); }
    void main() {
        int total = 0;
""" + dispatch + """
        Sys.print(total);
    }
}
""")


def _call_sites(vm):
    sites = []
    for code in vm._codes.values():
        for inst in code.instrs:
            for operand in inst:
                if isinstance(operand, CallSite):
                    sites.append(operand)
    return sites


@pytest.mark.parametrize("engine", ["vm", "jit"])
def test_inline_cache_capped_at_mega_threshold(engine):
    """Six receiver classes through one ``s.area()`` site: the cache
    stops growing at the profiler's mega threshold (4) and the extra
    classes still dispatch correctly, uncached."""
    n = 6
    interp = _interp(_mega_program(n), engine)
    interp.run()
    assert interp.output == [str(sum(range(1, n + 1)))]
    sites = _call_sites(interp._vm)
    assert sites, "lowering should have produced call sites"
    assert all(len(site.ic) <= 4 for site in sites)
    assert any(len(site.ic) == 4 for site in sites)


def test_capped_site_still_classified_mega():
    """The profiler must keep seeing megamorphic sites as ``mega``
    even though the cache itself is capped below the miss count."""
    profiler = Profiler("vm")
    interp = Interpreter(check_program(_mega_program(6)),
                         platform=NullPlatform(),
                         options=InterpOptions(engine="vm", fuel=500_000),
                         profiler=profiler)
    interp.run()
    area_sites = [entry for entry in
                  profiler.profile.call_sites.values()
                  if entry["name"] == "area"]
    assert area_sites
    classes = {ic_class(entry["ic_entries"]) for entry in area_sites}
    assert "mega" in classes
