"""Rendering tests for every figure formatter (fast, small harness runs)."""

import pytest

from repro.eval import (figure8, figure9, figure10, figure11,
                        format_figure8, format_figure9, format_figure10,
                        format_figure11)


@pytest.fixture(scope="module")
def fig8_rows():
    return figure8("A", benchmarks=["crypto"])


@pytest.fixture(scope="module")
def fig11_pairs():
    return figure11(benchmarks=["xalan"], units=30)


class TestFormatFigure8:
    def test_contains_all_combos(self, fig8_rows):
        text = format_figure8(fig8_rows)
        assert text.count("crypto") == 9
        assert text.count("EnergyException") == 3

    def test_energy_columns_numeric(self, fig8_rows):
        text = format_figure8(fig8_rows)
        data_lines = [l for l in text.splitlines()[3:] if l.strip()]
        for line in data_lines:
            cells = line.split()
            float(cells[3])  # ENT (J)
            float(cells[4])  # silent (J)


class TestFormatFigure9:
    def test_rows_and_percentages(self):
        bars = figure9(systems=("A",))[:3]
        text = format_figure9(bars)
        assert "boot/workload" in text
        assert "%" in text.splitlines()[1] or "% saved" in text


class TestFormatFigure10:
    def test_savings_rendered(self):
        rows = [r for r in figure10(systems=("A",))
                if r.benchmark == "crypto"]
        text = format_figure10(rows)
        assert "crypto" in text
        assert "es % saved" in text


class TestFormatFigure11:
    def test_sparklines_present(self, fig11_pairs):
        text = format_figure11(fig11_pairs)
        assert "ent  |" in text
        assert "java |" in text
        assert "sleeps" in text

    def test_sparkline_width_consistent(self, fig11_pairs):
        text = format_figure11(fig11_pairs)
        widths = {len(line) for line in text.splitlines()
                  if "|" in line}
        assert len(widths) == 1
