"""Unit tests over all 15 benchmark workloads.

Every workload must satisfy the structural contract the harness relies
on: the task attributor classifies its own Figure 7 sizes correctly,
kernels are deterministic for a seed, energy grows with workload size,
and the QoS knob orders energy es <= mg <= ft.
"""

import pytest

from repro.platform import make_platform
from repro.workloads import (ALL_WORKLOADS, BATTERY_MODES, ES, FT, MG,
                             get_workload, workloads_for_system)
from repro.workloads.base import battery_boot_mode, temperature_boot_mode


def _primary_system(workload):
    return workload.systems[0]


def _scaled(workload, mode, system):
    scale = getattr(workload, "system_scale", None)
    factor = scale(system) if scale is not None else 1.0
    return workload.task_size(mode) * factor


def _energy(workload, size_mode, qos_mode, seed=1):
    system = _primary_system(workload)
    platform = make_platform(system, seed=seed)
    workload.execute(platform, _scaled(workload, size_mode, system),
                     workload.qos_value(qos_mode), seed=seed)
    return platform.energy_total_j()


class TestRegistry:
    def test_fifteen_benchmarks(self):
        assert len(ALL_WORKLOADS) == 15

    def test_names_unique(self):
        names = [w.name for w in ALL_WORKLOADS]
        assert len(set(names)) == 15

    def test_get_workload(self):
        assert get_workload("jspider").name == "jspider"
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_systems_cover_paper(self):
        assert {w.name for w in workloads_for_system("B")} == {
            "sunflow", "crypto", "camera", "video", "javaboy"}
        assert {w.name for w in workloads_for_system("C")} == {
            "newpipe", "duckduckgo", "soundrecorder", "materiallife"}

    def test_figure6_metadata_present(self):
        for w in ALL_WORKLOADS:
            assert w.cloc > 0
            assert w.ent_changes > 0
            assert w.description

    def test_figure7_labels_complete(self):
        for w in ALL_WORKLOADS:
            for mode in BATTERY_MODES:
                assert w.workload_labels[mode]
                assert w.qos_labels[mode]


@pytest.mark.parametrize("workload", ALL_WORKLOADS,
                         ids=lambda w: w.name)
class TestWorkloadContract:
    def test_attribution_roundtrip(self, workload):
        """attribute(task_size(m)) == m — the attributor thresholds
        classify the Figure 7 inputs correctly."""
        for mode in BATTERY_MODES:
            assert workload.attribute(workload.task_size(mode)) == mode

    def test_sizes_strictly_increasing(self, workload):
        assert (workload.task_size(ES) < workload.task_size(MG)
                < workload.task_size(FT))

    def test_deterministic_for_seed(self, workload):
        assert _energy(workload, MG, MG, seed=2) == pytest.approx(
            _energy(workload, MG, MG, seed=2))

    def test_energy_grows_with_workload(self, workload):
        # Time-fixed workloads still order by input size (bigger
        # resolution / longer recording draws more average power).
        assert (_energy(workload, ES, MG) < _energy(workload, MG, MG)
                < _energy(workload, FT, MG))

    def test_qos_orders_energy(self, workload):
        es = _energy(workload, FT, ES)
        mg = _energy(workload, FT, MG)
        ft = _energy(workload, FT, FT)
        assert es < ft
        assert es <= mg <= ft or abs(mg - ft) / ft < 0.02

    def test_kernel_consumes_time(self, workload):
        system = _primary_system(workload)
        platform = make_platform(system, seed=1)
        workload.execute(platform, _scaled(workload, ES, system),
                         workload.qos_value(ES), seed=1)
        assert platform.now() > 0


class TestTimeFixedWorkloads:
    @pytest.mark.parametrize("name", ["camera", "video", "javaboy"])
    def test_duration_independent_of_qos(self, name):
        """The Pi benchmarks are time-fixed: every QoS level runs for
        the same duration; savings come from power (section 6.2)."""
        workload = get_workload(name)
        durations = []
        for qos_mode in BATTERY_MODES:
            platform = make_platform("B", seed=1)
            workload.execute(platform, workload.task_size(FT),
                             workload.qos_value(qos_mode), seed=1)
            durations.append(platform.now())
        spread = (max(durations) - min(durations)) / max(durations)
        assert spread < 0.02

    @pytest.mark.parametrize("name", ["camera", "video", "javaboy"])
    def test_power_drives_savings(self, name):
        workload = get_workload(name)
        energies = {}
        for qos_mode in (ES, FT):
            platform = make_platform("B", seed=1)
            workload.execute(platform, workload.task_size(FT),
                             workload.qos_value(qos_mode), seed=1)
            energies[qos_mode] = platform.energy_total_j()
        assert energies[ES] < energies[FT]


class TestE3Units:
    @pytest.mark.parametrize("name", ["sunflow", "jython", "xalan",
                                      "findbugs", "pagerank"])
    def test_unit_of_work(self, name):
        workload = get_workload(name)
        assert workload.supports_temperature
        platform = make_platform("A", seed=1)
        workload.execute_unit(platform, workload.qos_value(FT), seed=1)
        assert platform.now() > 0

    def test_unitless_workload_rejects(self):
        workload = get_workload("crypto")
        platform = make_platform("A", seed=1)
        with pytest.raises(NotImplementedError):
            workload.execute_unit(platform, 1.0)


class TestBootModeThresholds:
    def test_battery_thresholds(self):
        assert battery_boot_mode(0.90) == FT
        assert battery_boot_mode(0.75) == FT
        assert battery_boot_mode(0.70) == MG
        assert battery_boot_mode(0.50) == MG
        assert battery_boot_mode(0.40) == ES

    def test_temperature_thresholds(self):
        assert temperature_boot_mode(45.0) == "safe"
        assert temperature_boot_mode(62.0) == "hot"
        assert temperature_boot_mode(66.0) == "overheating"
        assert temperature_boot_mode(60.0) == "hot"
        assert temperature_boot_mode(65.0) == "hot"


class TestKernelRealism:
    """Spot checks that kernels do genuine computation."""

    def test_pagerank_converges(self):
        workload = get_workload("pagerank")
        platform = make_platform("A", seed=1)
        result = workload.execute(platform, 50_000, 0.001, seed=1)
        assert result.detail["delta"] <= 0.001
        assert result.detail["iterations"] >= 2
        assert 0 < result.detail["top_rank"] < 1

    def test_pagerank_tighter_threshold_more_iterations(self):
        workload = get_workload("pagerank")
        iters = {}
        for qos_mode in BATTERY_MODES:
            platform = make_platform("A", seed=1)
            result = workload.execute(platform, 300_000,
                                      workload.qos_value(qos_mode), seed=1)
            iters[qos_mode] = result.detail["iterations"]
        assert iters[ES] < iters[MG] < iters[FT]

    def test_crypto_checksum_depends_on_key(self):
        workload = get_workload("crypto")
        sums = set()
        for bits in (768, 1024):
            platform = make_platform("A", seed=1)
            result = workload.execute(platform, 100_000, bits, seed=1)
            sums.add(result.detail["checksum"])
        assert len(sums) == 2

    def test_findbugs_finds_bugs(self):
        workload = get_workload("findbugs")
        platform = make_platform("A", seed=1)
        result = workload.execute(platform, 5000, 1, seed=1)
        assert result.detail["bugs"] > 0

    def test_materiallife_evolves(self):
        from repro.workloads.materiallife import life_step, seed_board
        cells = seed_board(200, 1)
        after = life_step(cells)
        assert after != cells

    def test_life_blinker_oscillates(self):
        from repro.workloads.materiallife import life_step
        blinker = {(0, -1), (0, 0), (0, 1)}
        once = life_step(blinker)
        assert once == {(-1, 0), (0, 0), (1, 0)}
        assert life_step(once) == blinker

    def test_sunflow_hits_spheres(self):
        workload = get_workload("sunflow")
        platform = make_platform("A", seed=1)
        result = workload.execute(platform, 8, 2.0, seed=1)
        assert result.detail["brightness"] > 0

    def test_javaboy_vm_executes(self):
        from repro.workloads.javaboy import _Vm, _gen_rom
        vm = _Vm(_gen_rom(4096, 1))
        assert vm.run(1000) == 1000

    def test_xalan_parser_validates(self):
        from repro.workloads.xalan import _parse
        assert _parse("<a><b></b></a>") == 2
        with pytest.raises(AssertionError):
            _parse("<a><b></a></b>")

    def test_jython_compiles(self):
        from repro.workloads.jython import _Parser, _tokenize
        code = _Parser(_tokenize("x = 1 + 2 * 3")).parse()
        assert ("store", "x") in code
        assert ("binop", "*") in code
