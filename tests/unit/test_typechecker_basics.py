"""Typechecker unit tests: the Java-like fragment."""

import pytest

from repro.core.errors import EntTypeError
from repro.lang.typechecker import check_program

MODES = "modes { energy_saver <= managed; managed <= full_throttle; }\n"


def check(body, extra_classes=""):
    """Typecheck a Main with the given main body."""
    return check_program(
        MODES + extra_classes
        + "class Main { void main() { " + body + " } }")


def check_fails(body, fragment="", extra_classes=""):
    with pytest.raises(EntTypeError) as exc_info:
        check(body, extra_classes)
    if fragment:
        assert fragment in str(exc_info.value)


class TestLocalsAndTypes:
    def test_int_local(self):
        check("int x = 3; x = x + 1;")

    def test_double_widening(self):
        check("double d = 3;")

    def test_int_narrowing_rejected(self):
        check_fails("int x = 2.5;", "not assignable")

    def test_string_local(self):
        check('String s = "hi"; s = s + 1;')

    def test_boolean_condition_required(self):
        check_fails("if (1) { }", "boolean")

    def test_undefined_variable(self):
        check_fails("x = 1;", "unknown variable")

    def test_duplicate_local(self):
        check_fails("int x = 1; int x = 2;", "duplicate local")

    def test_block_scoping(self):
        check("if (true) { int x = 1; } if (true) { int x = 2; }")

    def test_out_of_scope(self):
        check_fails("if (true) { int x = 1; } x = 2;")

    def test_null_to_object(self):
        check("Helper h = null;", extra_classes="class Helper { }\n")

    def test_null_to_int_rejected(self):
        check_fails("int x = null;")

    def test_void_local_rejected(self):
        check_fails("void v = 1;")


class TestOperators:
    def test_arithmetic(self):
        check("int x = 1 + 2 * 3 - 4 / 2 % 2;")

    def test_mixed_arithmetic_is_double(self):
        check("double d = 1 + 2.0;")
        check_fails("int x = 1 + 2.0;")

    def test_comparison(self):
        check("boolean b = 1 < 2;")

    def test_comparison_on_strings_rejected(self):
        check_fails('boolean b = "a" < "b";')

    def test_equality_any(self):
        check('boolean b = "a" == "b";')

    def test_logical(self):
        check("boolean b = true && (1 < 2) || false;")

    def test_logical_requires_boolean(self):
        check_fails("boolean b = 1 && true;")

    def test_negation(self):
        check("int x = -3; boolean b = !true;")

    def test_string_concat_any(self):
        check('String s = "x" + 1 + true;')


class TestMethodsAndClasses:
    COUNTER = """
    class Counter {
        int count;
        Counter(int start) { this.count = start; }
        int increment(int by) { count = count + by; return count; }
        int get() { return count; }
    }
    """

    def test_construct_and_call(self):
        check("Counter c = new Counter(1); int x = c.increment(2);",
              extra_classes=self.COUNTER)

    def test_wrong_arity(self):
        check_fails("Counter c = new Counter(1); c.increment();",
                    "argument", extra_classes=self.COUNTER)

    def test_wrong_arg_type(self):
        check_fails('Counter c = new Counter("a");',
                    extra_classes=self.COUNTER)

    def test_unknown_method(self):
        check_fails("Counter c = new Counter(1); c.missing();",
                    "no method", extra_classes=self.COUNTER)

    def test_unknown_class(self):
        check_fails("Mystery m = new Mystery();", "unknown class")

    def test_field_access(self):
        check("Counter c = new Counter(0); int x = c.count;",
              extra_classes=self.COUNTER)

    def test_unknown_field(self):
        check_fails("Counter c = new Counter(0); int x = c.nope;",
                    "no field", extra_classes=self.COUNTER)

    def test_missing_return_rejected(self):
        check_fails("", extra_classes="""
        class Bad { int f(boolean b) { if (b) { return 1; } } }
        """)

    def test_all_paths_return_accepted(self):
        check("", extra_classes="""
        class Good {
            int f(boolean b) {
                if (b) { return 1; } else { return 2; }
            }
        }
        """)

    def test_void_cannot_return_value(self):
        check_fails("", extra_classes="class Bad { void f() { return 1; } }")

    def test_inheritance_field_and_method(self):
        check("Sub s = new Sub(); int x = s.base + s.basef();",
              extra_classes="""
        class Base { int base; int basef() { return base; } }
        class Sub extends Base { }
        """)

    def test_override_arity_mismatch_rejected(self):
        check_fails("", extra_classes="""
        class Base { int f(int x) { return x; } }
        class Sub extends Base { int f() { return 1; } }
        """)

    def test_inheritance_cycle_rejected(self):
        check_fails("", extra_classes="""
        class A1 extends B1 { }
        class B1 extends A1 { }
        """)

    def test_duplicate_class_rejected(self):
        check_fails("", extra_classes="class Twice { } class Twice { }")


class TestNativesAndLists:
    def test_list_ops(self):
        check("List l = new List(); l.add(1); int n = l.size(); "
              "boolean e = l.isEmpty();")

    def test_list_element_needs_cast(self):
        check_fails("List l = new List(); l.get(0).touch();",
                    "type-erased")

    def test_cast_from_list_element(self):
        check("List l = new List(); l.add(new Helper()); "
              "Helper h = (Helper) l.get(0);",
              extra_classes="class Helper { }\n")

    def test_foreach_over_list(self):
        check("List l = [1, 2, 3]; int total = 0; "
              "foreach (int x : l) { total = total + x; }")

    def test_foreach_requires_list(self):
        check_fails("foreach (int x : 3) { }", "foreach requires a List")

    def test_ext_and_sys(self):
        check("double b = Ext.battery(); double t = Ext.temperature(); "
              'Sys.print("b=" + b); Sys.work(10);')

    def test_math(self):
        check("int m = Math.min(1, 2); double s = Math.sqrt(2.0); "
              "int f = Math.floor(2.7);")

    def test_unknown_native_method(self):
        check_fails("Ext.frequency();", "unknown native")

    def test_string_methods(self):
        check('String s = "hello"; int n = s.length(); '
              'boolean b = s.startsWith("he"); List parts = s.split("l");')

    def test_try_catch_energy_exception(self):
        check('try { Sys.work(1); } catch (EnergyException e) '
              '{ Sys.print(e); }')

    def test_catch_other_exception_rejected(self):
        check_fails('try { } catch (IOException e) { }',
                    "EnergyException")

    def test_instanceof(self):
        check("Helper h = new Helper(); boolean b = h instanceof Helper;",
              extra_classes="class Helper { }\n")
