"""Unit tests for the observability layer (``repro.obs``)."""

import json

import pytest

from repro.core.errors import EntError
from repro.obs.events import (AttributorEvent, MeterSampleEvent,
                              ModeTransitionEvent, PlatformReadEvent,
                              SnapshotEvent, Span, event_from_dict)
from repro.obs.export import (chrome_trace, read_jsonl, write_chrome_trace,
                              write_jsonl, write_trace)
from repro.obs.metrics import (Histogram, dwell_times, mode_timeline,
                               trace_metrics, transition_scopes)
from repro.obs.report import (UNTRACKED, energy_attribution,
                              render_report, render_timeline)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.platform.systems import make_platform
from repro.runtime.embedded import EntRuntime
from repro.workloads.base import temperature_boot_mode


def make_tracer(**kwargs):
    """A tracer on a deterministic manual clock."""
    clock = {"t": 0.0}

    def now():
        clock["t"] += 0.5
        return clock["t"]

    return Tracer(now=now, **kwargs)


class TestTracer:
    def test_records_in_order(self):
        tracer = make_tracer()
        for signal in ("battery", "temperature", "battery"):
            tracer.emit(PlatformReadEvent(ts=tracer.now(), signal=signal,
                                          value=1.0))
        kinds = [e.signal for e in tracer.events()]
        assert kinds == ["battery", "temperature", "battery"]
        assert len(tracer) == 3
        assert tracer.dropped == 0

    def test_ring_eviction_keeps_newest(self):
        tracer = make_tracer(capacity=4)
        for index in range(10):
            tracer.emit(PlatformReadEvent(ts=float(index), signal="battery",
                                          value=float(index)))
        events = tracer.events()
        assert len(events) == 4
        assert len(tracer) == 4
        assert tracer.dropped == 6
        # Oldest first, and only the newest window survives.
        assert [e.value for e in events] == [6.0, 7.0, 8.0, 9.0]

    def test_clear(self):
        tracer = make_tracer(capacity=2)
        for index in range(5):
            tracer.emit(PlatformReadEvent(ts=float(index), signal="battery",
                                          value=float(index)))
        tracer.clear()
        assert tracer.events() == []
        assert tracer.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_span_emits_on_close(self):
        tracer = make_tracer()
        with tracer.span("work", category="phase", index=3):
            pass
        (span,) = tracer.events()
        assert isinstance(span, Span)
        assert span.name == "work"
        assert span.dur == pytest.approx(0.5)
        assert span.args == {"index": 3}

    def test_span_emits_on_exception(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert len(tracer.events()) == 1

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(PlatformReadEvent(ts=0.0, signal="battery",
                                           value=1.0))
        NULL_TRACER.mode_transition("closure", None, "safe")
        with NULL_TRACER.span("anything"):
            pass
        assert NULL_TRACER.events() == []
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.energy_j() is None
        assert isinstance(NULL_TRACER, NullTracer)

    def test_bind_platform_uses_sim_clock_and_ledger(self):
        platform = make_platform("A", seed=0)
        tracer = Tracer()
        platform.set_tracer(tracer)
        platform.cpu_work(1.0)
        tracer.mode_transition("closure", None, "safe")
        (event,) = [e for e in tracer.events()
                    if isinstance(e, ModeTransitionEvent)]
        assert event.ts == pytest.approx(platform.now())
        assert event.energy_j == pytest.approx(platform.ledger.total_j)


EXAMPLE_EVENTS = [
    MeterSampleEvent(ts=0.0, meter="RaplMeter", phase="begin"),
    Span(ts=0.0, name="boot", dur=1.0, category="phase",
         args={"index": 0}),
    AttributorEvent(ts=1.0, cls="Agent", mode="managed"),
    SnapshotEvent(ts=1.0, cls="Agent", mode="managed", lower=None,
                  upper=None, ok=True, lazy=True),
    ModeTransitionEvent(ts=1.0, scope="closure", from_mode="$top",
                        to_mode="managed", energy_j=2.0),
    PlatformReadEvent(ts=1.5, signal="battery", value=0.8),
    ModeTransitionEvent(ts=3.0, scope="closure", from_mode="managed",
                        to_mode="energy_saver", energy_j=6.0),
    MeterSampleEvent(ts=4.0, meter="RaplMeter", phase="end",
                     cpu_j=7.5, io_j=0.5, total_j=8.0),
]


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        assert write_jsonl(EXAMPLE_EVENTS, path) == len(EXAMPLE_EVENTS)
        back = read_jsonl(path)
        assert back == EXAMPLE_EVENTS

    def test_event_from_dict_round_trip(self):
        for event in EXAMPLE_EVENTS:
            clone = event_from_dict(json.loads(json.dumps(event.as_dict())))
            assert clone == event

    def test_event_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            event_from_dict({"kind": "nope", "ts": 0.0})

    def test_chrome_round_trip_through_json(self, tmp_path):
        path = tmp_path / "t.json"
        write_chrome_trace(EXAMPLE_EVENTS, path)
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert data["displayTimeUnit"] == "ms"
        # The Span becomes a complete event with microsecond units.
        (complete,) = [e for e in events if e["ph"] == "X"]
        assert complete["name"] == "boot"
        assert complete["dur"] == pytest.approx(1e6)
        # Meter samples double as counter tracks.
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 2
        # Thread-name metadata labels the rows.
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "ent-runtime" in names

    def test_write_trace_dispatch(self, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        assert write_trace(EXAMPLE_EVENTS, jsonl, fmt="jsonl") \
            == len(EXAMPLE_EVENTS)
        assert write_trace(EXAMPLE_EVENTS, chrome, fmt="chrome") \
            == len(EXAMPLE_EVENTS)
        assert read_jsonl(jsonl) == EXAMPLE_EVENTS
        assert json.loads(chrome.read_text())["traceEvents"]
        with pytest.raises(ValueError):
            write_trace(EXAMPLE_EVENTS, jsonl, fmt="xml")


class TestTimeline:
    def test_mode_timeline_and_dwell(self):
        scope, intervals = mode_timeline(EXAMPLE_EVENTS)
        assert scope == "closure"
        # Prepended $top interval, then managed, then the open tail.
        assert intervals == [
            (0.0, 1.0, "$top"),
            (1.0, 3.0, "managed"),
            (3.0, 4.0, "energy_saver"),
        ]
        dwell = dwell_times(EXAMPLE_EVENTS)
        assert dwell["$top"] == pytest.approx(1.0)
        assert dwell["managed"] == pytest.approx(2.0)
        assert dwell["energy_saver"] == pytest.approx(1.0)

    def test_busiest_scope_wins(self):
        events = list(EXAMPLE_EVENTS) + [
            ModeTransitionEvent(ts=0.5, scope="object:Sleeper",
                                from_mode=None, to_mode="safe"),
        ]
        assert transition_scopes(events) == ["closure", "object:Sleeper"]
        assert mode_timeline(events)[0] == "closure"
        assert mode_timeline(events, "object:Sleeper")[0] \
            == "object:Sleeper"

    def test_render_timeline_mentions_modes(self):
        text = render_timeline(EXAMPLE_EVENTS)
        assert "managed" in text
        assert "energy_saver" in text
        assert render_timeline([]) == "(no mode transitions recorded)"


class TestAttribution:
    def test_synthetic_buckets_sum_to_ledger_delta(self):
        scope, attribution = energy_attribution(EXAMPLE_EVENTS)
        assert scope == "closure"
        # 0 J -> 2 J under $top, 2 -> 6 under managed, 6 -> 8 under es.
        assert attribution == {
            "$top": pytest.approx(2.0),
            "managed": pytest.approx(4.0),
            "energy_saver": pytest.approx(2.0),
        }
        assert sum(attribution.values()) == pytest.approx(8.0)

    def test_episode_attribution_sums_to_ledger_total(self):
        platform = make_platform("A", seed=1)
        tracer = Tracer()
        rt = EntRuntime.thermal(platform, tracer=tracer)

        @rt.dynamic
        class Sleeper:
            def attributor(self):
                return temperature_boot_mode(rt.ext.temperature())

        meter = platform.meter()
        meter.begin()
        sleeper = Sleeper()
        for _ in range(4):
            platform.cpu_work(3.0)
            rt.snapshot(sleeper)
        meter.end()

        scope, attribution = energy_attribution(tracer.events())
        assert scope == "object:Sleeper"
        assert sum(attribution.values()) \
            == pytest.approx(platform.ledger.total_j)
        tracked = {mode: joules for mode, joules in attribution.items()
                   if mode != UNTRACKED}
        assert tracked  # at least one real mode got energy

    def test_report_renders_all_sections(self):
        text = render_report(EXAMPLE_EVENTS)
        assert "ENT trace report" in text
        assert "Mode timeline" in text
        assert "Energy attribution" in text
        assert "Counters:" in text
        assert render_report([]) == "(empty trace)"


class TestMetrics:
    def test_trace_metrics_counters(self):
        registry = trace_metrics(EXAMPLE_EVENTS)
        counters = registry.as_dict()["counters"]
        assert counters["events.snapshot"] == 1
        assert counters["snapshot.lazy"] == 1
        assert counters["attributor.Agent.managed"] == 1
        assert counters["platform_read.battery"] == 1
        assert registry.as_dict()["gauges"]["dwell_s.managed"] \
            == pytest.approx(2.0)

    def test_histogram_stats(self):
        hist = Histogram("lat", bounds=[1.0, 10.0, 100.0])
        for value in (0.5, 2.0, 3.0, 50.0, 500.0):
            hist.record(value)
        stats = hist.as_dict()
        assert stats["count"] == 5
        assert stats["min"] == 0.5
        assert stats["max"] == 500.0
        assert stats["mean"] == pytest.approx(111.1)
        assert stats["p50"] == 10.0  # upper-bound estimate
        assert stats["p99"] == 500.0  # overflow bucket reports the max

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=[10.0, 1.0])


class TestLedgerValidation:
    def test_unknown_component_raises_ent_error(self):
        platform = make_platform("A", seed=0)
        with pytest.raises(EntError, match="unknown energy component"):
            platform.ledger.add("gpu_j", 1.0)

    def test_known_components_accumulate(self):
        platform = make_platform("A", seed=0)
        platform.ledger.add("io_j", 2.5)
        assert platform.ledger.io_j == pytest.approx(2.5)


class TestMetricsMerge:
    def test_counter_inc_rejects_negative(self):
        from repro.obs.metrics import Counter
        counter = Counter("n")
        with pytest.raises(ValueError, match="monotonic"):
            counter.inc(-1)
        counter.inc(0)
        counter.inc(3)
        assert counter.value == 3

    def test_histogram_merge_bucketwise(self):
        a = Histogram("lat", bounds=[1.0, 10.0])
        b = Histogram("lat", bounds=[1.0, 10.0])
        for value in (0.5, 2.0):
            a.record(value)
        for value in (5.0, 50.0):
            b.record(value)
        a.merge(b)
        assert a.count == 4
        assert a.total == pytest.approx(57.5)
        assert a.min == 0.5
        assert a.max == 50.0
        assert a.bucket_counts == [1, 2, 1]

    def test_histogram_merge_rejects_different_bounds(self):
        a = Histogram("a", bounds=[1.0])
        b = Histogram("b", bounds=[1.0, 2.0])
        with pytest.raises(ValueError, match="different bounds"):
            a.merge(b)

    def test_registry_merge_keyed(self):
        from repro.obs.metrics import MetricsRegistry
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("shared").inc(1)
        b.counter("shared").inc(2)
        b.counter("only_b").inc(5)
        a.histogram("h", (1.0,)).record(0.5)
        b.histogram("h", (1.0,)).record(2.0)
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 9.0)
        a.merge(b)
        assert a.counters["shared"].value == 3
        assert a.counters["only_b"].value == 5
        assert a.histograms["h"].count == 2
        assert a.gauges["g"] == 9.0  # last write wins

    def test_registry_merge_is_commutative_on_counts(self):
        from repro.obs.metrics import MetricsRegistry

        def build(values):
            registry = MetricsRegistry()
            for name, amount in values:
                registry.counter(name).inc(amount)
            return registry

        left = build([("x", 1), ("y", 2)])
        left.merge(build([("y", 3), ("z", 4)]))
        right = build([("y", 3), ("z", 4)])
        right.merge(build([("x", 1), ("y", 2)]))
        assert {n: c.value for n, c in left.counters.items()} \
            == {n: c.value for n, c in right.counters.items()}


class TestQuantileEdges:
    def test_empty_histogram(self):
        hist = Histogram("h", bounds=[1.0])
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(1.0) == 0.0
        assert hist.mean == 0.0

    def test_q0_and_q1_are_exact(self):
        hist = Histogram("h", bounds=[1.0, 10.0])
        for value in (0.25, 3.0, 42.0):
            hist.record(value)
        assert hist.quantile(0.0) == 0.25
        assert hist.quantile(1.0) == 42.0

    def test_single_sample(self):
        hist = Histogram("h", bounds=[1.0])
        hist.record(0.7)
        assert hist.quantile(0.0) == 0.7
        assert hist.quantile(0.5) == 1.0  # bucket upper bound
        assert hist.quantile(1.0) == 0.7
        assert hist.mean == pytest.approx(0.7)

    def test_out_of_range_q_rejected(self):
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.1)


class TestPrometheus:
    def make_registry(self):
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        registry.counter("op.ADD").inc(7)
        registry.set_gauge("dwell_s.managed", 2.0)
        hist = registry.histogram("lat", (0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.record(value)
        return registry

    def test_families_and_series(self):
        from repro.obs.export import render_prometheus
        text = render_prometheus(self.make_registry())
        assert "# TYPE repro_counter counter" in text
        assert 'repro_counter{name="op.ADD"} 7' in text
        assert 'repro_gauge{name="dwell_s.managed"} 2' in text
        assert 'repro_histogram_bucket{name="lat",le="0.1"} 1' in text
        assert 'repro_histogram_bucket{name="lat",le="1"} 2' in text
        assert 'repro_histogram_bucket{name="lat",le="+Inf"} 3' in text
        assert 'repro_histogram_sum{name="lat"} 5.55' in text
        assert 'repro_histogram_count{name="lat"} 3' in text
        assert text.endswith("\n")

    def test_buckets_are_cumulative(self):
        from repro.obs.export import render_prometheus
        lines = [line for line in
                 render_prometheus(self.make_registry()).splitlines()
                 if line.startswith("repro_histogram_bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_label_escaping(self):
        from repro.obs.export import render_prometheus
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        registry.counter('weird\\name"with\nstuff').inc(1)
        text = render_prometheus(registry)
        assert ('repro_counter{name="weird\\\\name\\"with\\nstuff"} 1'
                in text)
        assert "\n" not in text.splitlines()[1].replace("\\n", "")

    def test_empty_registry_renders_empty(self):
        from repro.obs.export import render_prometheus
        from repro.obs.metrics import MetricsRegistry
        assert render_prometheus(MetricsRegistry()) == ""
