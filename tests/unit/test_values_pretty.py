"""Unit tests for runtime values and the pretty-printer."""

import pytest

from repro.core.errors import EntRuntimeError
from repro.core.modes import Mode
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.types import ClassInfo, ModeParam
from repro.lang.values import MCaseV, ObjectV

ES, MG, FT = (Mode("energy_saver"), Mode("managed"), Mode("full_throttle"))


def make_dynamic_object():
    info = ClassInfo(name="D", superclass="Object",
                     params=[ModeParam(dynamic=True, var="X")])
    return ObjectV(info, {"X": None}, {"f": 1})


class TestObjectV:
    def test_effective_mode_dynamic(self):
        obj = make_dynamic_object()
        assert obj.effective_mode is None

    def test_effective_mode_concrete_param(self):
        info = ClassInfo(name="C", superclass="Object",
                         params=[ModeParam(concrete=MG)])
        obj = ObjectV(info, {}, {})
        assert obj.effective_mode == MG

    def test_shallow_copy_tags(self):
        obj = make_dynamic_object()
        copy = obj.shallow_copy(FT)
        assert copy.effective_mode == FT
        assert obj.effective_mode is None
        assert copy.oid != obj.oid
        assert copy.is_snapshot

    def test_shallow_copy_shares_values_not_map(self):
        obj = make_dynamic_object()
        obj.fields["lst"] = [1]
        copy = obj.shallow_copy(MG)
        copy.fields["lst"].append(2)
        assert obj.fields["lst"] == [1, 2]  # value shared
        copy.set_field("f", 99)
        assert obj.get_field("f") == 1      # map not shared

    def test_tag_in_place(self):
        obj = make_dynamic_object()
        same = obj.tag_in_place(MG)
        assert same is obj
        assert obj.effective_mode == MG
        assert obj.snap_tagged

    def test_unknown_field(self):
        obj = make_dynamic_object()
        with pytest.raises(EntRuntimeError):
            obj.get_field("nope")
        with pytest.raises(EntRuntimeError):
            obj.set_field("nope", 1)

    def test_unique_ids(self):
        assert make_dynamic_object().oid != make_dynamic_object().oid


class TestMCaseV:
    def test_select(self):
        case = MCaseV({ES: 1, MG: 2, FT: 3})
        assert case.select(MG) == 2

    def test_missing_branch(self):
        case = MCaseV({MG: 2})
        with pytest.raises(EntRuntimeError):
            case.select(FT)

    def test_default(self):
        case = MCaseV({MG: 2}, default=0)
        assert case.select(FT) == 0

    def test_none_default_distinct_from_missing(self):
        case = MCaseV({MG: 2}, default=None)
        assert case.select(FT) is None

    def test_dynamic_elimination_rejected(self):
        case = MCaseV({MG: 2})
        with pytest.raises(EntRuntimeError):
            case.select(None)


PROGRAMS = [
    "modes { a <= b; }\nclass C { }",
    """
    modes { energy_saver <= managed; managed <= full_throttle; }
    class Site@mode<?X> {
        List resources;
        attributor {
            if (resources.size() > 50) { return managed; }
            return energy_saver;
        }
        Site(int n) { this.resources = new List(); }
        mcase<int> depth = mcase{
            energy_saver: 1; managed: 2; full_throttle: 3;
        };
        int crawl(int d) {
            int acc = 0;
            foreach (int r : resources) { acc = acc + d; }
            return acc;
        }
    }
    class Main {
        void main() {
            Site ds = new Site@mode<?>(10);
            Site s = snapshot ds [_, managed];
            try { Sys.print(s.crawl(mselect(ds.depth, managed))); }
            catch (EnergyException e) { Sys.print(e); }
        }
    }
    """,
    """
    modes { lo <= hi; }
    class G@mode<lo <= X <= hi> extends Object {
        @mode<hi> int heavy(double d) { return (int) d; }
        @mode<Y> int generic(G@mode<Y> other) { return 1; }
    }
    class Main { void main() { boolean b = !(1 < 2) || true; } }
    """,
]


class TestPrettyRoundTrip:
    @pytest.mark.parametrize("source", PROGRAMS)
    def test_parse_print_parse(self, source):
        first = parse_program(source)
        printed = pretty_program(first)
        second = parse_program(printed)
        # Idempotence: printing the reparsed tree is stable.
        assert pretty_program(second) == printed
