"""Advanced language tests: inheritance with modes, multi-parameter
generics, attributor inheritance, runtime casts, and scoping corners."""

import pytest

from repro.core.errors import (BadCastError, EnergyException,
                               EntTypeError, WaterfallError)
from repro.lang import check_program, run_source

MODES = "modes { energy_saver <= managed; managed <= full_throttle; }\n"


def run(source, **kwargs):
    return run_source(MODES + source, **kwargs)


def check(source, **kwargs):
    return check_program(MODES + source, **kwargs)


class TestInheritanceWithModes:
    def test_mode_passthrough_by_default(self):
        """Without an explicit extends instantiation, the subclass's
        mode flows to the superclass."""
        interp = run("""
        class Base@mode<X> {
            mcase<int> tier = mcase{ energy_saver: 1; managed: 2;
                                     full_throttle: 3; };
            int tell() { return tier; }
        }
        class Derived@mode<X> extends Base { }
        class Main {
            void main() {
                Derived d = new Derived@mode<full_throttle>();
                Sys.print(d.tell());
            }
        }
        """)
        assert interp.output == ["3"]

    def test_explicit_super_instantiation(self):
        interp = run("""
        class Base@mode<X> {
            mcase<int> tier = mcase{ energy_saver: 1; managed: 2;
                                     full_throttle: 3; };
        }
        class Pinned@mode<X> extends Base@mode<energy_saver> {
            int tell() { return mselect(tier, energy_saver); }
        }
        class Main {
            void main() {
                Pinned p = new Pinned@mode<managed>();
                Sys.print(p.tell());
            }
        }
        """)
        assert interp.output == ["1"]

    def test_dynamic_subclass_inherits_attributor(self):
        interp = run("""
        class Base@mode<?X> {
            int n;
            attributor {
                if (n > 10) { return full_throttle; }
                return energy_saver;
            }
        }
        class Derived@mode<?Y> extends Base {
            Derived(int n) { this.n = n; }
            int probe() { return 7; }
        }
        class Main {
            void main() {
                Derived d = snapshot (new Derived@mode<?>(50));
                Sys.print(d.probe());
            }
        }
        """)
        assert interp.output == ["7"]

    def test_overriding_method_dispatches_dynamically(self):
        interp = run("""
        class Base@mode<managed> { int f() { return 1; } }
        class Derived@mode<managed> extends Base {
            int f() { return 2; }
        }
        class Main {
            void main() {
                Base b = new Derived();
                Sys.print(b.f());
            }
        }
        """)
        assert interp.output == ["2"]

    def test_super_instantiation_respects_bounds(self):
        with pytest.raises(EntTypeError):
            check("""
            class Base@mode<managed <= X <= full_throttle> { }
            class Bad@mode<Y> extends Base@mode<energy_saver> { }
            class Main { void main() { } }
            """)


class TestMultiParamGenerics:
    SOURCE = """
    class Pair@mode<X, Y> {
        mcase<int> first = mcase{ energy_saver: 1; managed: 2;
                                  full_throttle: 3; };
        int firstOf() { return first; }
    }
    """

    def test_instantiation_and_use(self):
        interp = run(self.SOURCE + """
        class Main {
            void main() {
                Pair@mode<managed, full_throttle> p =
                    new Pair@mode<managed, full_throttle>();
                Sys.print(p.firstOf());
            }
        }
        """)
        assert interp.output == ["2"]

    def test_second_param_does_not_affect_omode(self):
        check(self.SOURCE + """
        class Caller@mode<managed> {
            int go(Pair@mode<energy_saver, full_throttle> p) {
                return p.firstOf();
            }
        }
        class Main { void main() { } }
        """)

    def test_arity_checked(self):
        with pytest.raises(EntTypeError):
            check(self.SOURCE + """
            class Main {
                void main() { Pair p = new Pair@mode<managed>(); }
            }
            """)


class TestGenericMethodBounds:
    def test_bounded_method_var(self):
        check("""
        class Data@mode<X> { int size; }
        class Tool {
            @mode<managed <= Z <= full_throttle>
            int heavy(Data@mode<Z> d) { return d.size; }
        }
        class Main {
            void main() {
                Tool t = new Tool();
                Data@mode<full_throttle> d =
                    new Data@mode<full_throttle>();
                int x = t.heavy(d);
            }
        }
        """)

    def test_inference_through_mcase_argument(self):
        check("""
        class Tool {
            @mode<Z> int pick(Holder@mode<Z> h) { return 1; }
        }
        class Holder@mode<X> { }
        class Main {
            void main() {
                Tool t = new Tool();
                int x = t.pick(new Holder@mode<managed>());
            }
        }
        """)

    def test_conflicting_inference_rejected(self):
        with pytest.raises(EntTypeError):
            check("""
            class Box@mode<X> { }
            class Tool {
                @mode<Z> int two(Box@mode<Z> a, Box@mode<Z> b) {
                    return 1;
                }
            }
            class Main {
                void main() {
                    Tool t = new Tool();
                    int x = t.two(new Box@mode<managed>(),
                                  new Box@mode<full_throttle>());
                }
            }
            """)


class TestRuntimeCasts:
    LIB = """
    class Box@mode<X> { int v; Box(int v) { this.v = v; } }
    class SubBox@mode<X> extends Box {
        SubBox(int v) { this.v = v; }
    }
    """

    def test_mode_checked_downcast_succeeds(self):
        interp = run(self.LIB + """
        class Main {
            void main() {
                List l = new List();
                l.add(new Box@mode<managed>(9));
                Box@mode<managed> b = (Box@mode<managed>) l.get(0);
                Sys.print(b.v);
            }
        }
        """)
        assert interp.output == ["9"]

    def test_wrong_mode_cast_raises(self):
        with pytest.raises(BadCastError):
            run(self.LIB + """
            class Main {
                void main() {
                    List l = new List();
                    l.add(new Box@mode<managed>(9));
                    Box@mode<full_throttle> b =
                        (Box@mode<full_throttle>) l.get(0);
                }
            }
            """)

    def test_class_downcast_checked(self):
        with pytest.raises(BadCastError):
            run(self.LIB + """
            class Main {
                void main() {
                    List l = new List();
                    l.add(new Box@mode<managed>(1));
                    SubBox@mode<managed> s =
                        (SubBox@mode<managed>) l.get(0);
                }
            }
            """)

    def test_upcast_through_list(self):
        interp = run(self.LIB + """
        class Main {
            void main() {
                List l = new List();
                l.add(new SubBox@mode<managed>(4));
                Box@mode<managed> b = (Box@mode<managed>) l.get(0);
                Sys.print(b.v);
            }
        }
        """)
        assert interp.output == ["4"]


class TestScopingCorners:
    def test_param_shadows_field(self):
        interp = run("""
        class C {
            int x;
            C() { this.x = 10; }
            int probe(int x) { return x; }
            int field() { return x; }
        }
        class Main {
            void main() {
                C c = new C();
                Sys.print(c.probe(1));
                Sys.print(c.field());
            }
        }
        """)
        assert interp.output == ["1", "10"]

    def test_local_shadows_mode_constant(self):
        # A local named like a mode hides the mode literal.
        interp = run("""
        class Main {
            void main() {
                int managed = 42;
                Sys.print(managed);
            }
        }
        """)
        assert interp.output == ["42"]

    def test_foreach_variable_scoped(self):
        with pytest.raises(EntTypeError):
            check("""
            class Main {
                void main() {
                    foreach (int x : [1, 2]) { }
                    Sys.print(x);
                }
            }
            """)

    def test_nested_loops_break_inner_only(self):
        interp = run("""
        class Main {
            void main() {
                int total = 0;
                foreach (int i : [1, 2, 3]) {
                    foreach (int j : [10, 20, 30]) {
                        if (j == 20) { break; }
                        total = total + i * j;
                    }
                }
                Sys.print(total);
            }
        }
        """)
        assert interp.output == ["60"]

    def test_field_write_on_other_object(self):
        interp = run("""
        class Cell { int v; }
        class Main {
            void main() {
                Cell c = new Cell();
                c.v = 5;
                c.v = c.v + 1;
                Sys.print(c.v);
            }
        }
        """)
        assert interp.output == ["6"]


class TestExceptionsAndModes:
    def test_throw_caught_as_energy_exception(self):
        interp = run("""
        class Main {
            void main() {
                try { throw "manual bail"; }
                catch (EnergyException e) { Sys.print("got: " + e); }
            }
        }
        """)
        assert interp.output == ["got: manual bail"]

    def test_uncaught_throw_escapes(self):
        with pytest.raises(EnergyException):
            run("""
            class Main { void main() { throw "boom"; } }
            """)

    def test_exception_inside_attributor_propagates(self):
        # An attributor can itself signal an energy condition.
        with pytest.raises(EnergyException):
            run("""
            class D@mode<?X> {
                attributor {
                    if (Ext.battery() < 2.0) { throw "no power data"; }
                    return managed;
                }
                D() { }
            }
            class Main {
                void main() { D d = snapshot (new D@mode<?>()); }
            }
            """)

    def test_mode_values_comparable(self):
        interp = run("""
        class D@mode<?X> {
            attributor { return managed; }
            D() { }
        }
        class Main {
            void main() {
                Sys.print(managed == managed);
                Sys.print(managed == full_throttle);
            }
        }
        """)
        assert interp.output == ["true", "false"]

    def test_nested_try_inner_catches(self):
        interp = run("""
        class Main {
            void main() {
                try {
                    try { throw "inner"; }
                    catch (EnergyException e) { Sys.print("A:" + e); }
                    throw "outer";
                } catch (EnergyException e) { Sys.print("B:" + e); }
            }
        }
        """)
        assert interp.output == ["A:inner", "B:outer"]


class TestSnapshotCorners:
    DYN = """
    class D@mode<?X> {
        int n;
        attributor {
            if (n > 10) { return full_throttle; }
            return energy_saver;
        }
        D(int n) { this.n = n; }
        int get() { return n; }
    }
    """

    def test_snapshot_in_loop_tracks_state(self):
        interp = run(self.DYN + """
        class Main {
            void main() {
                D d = new D@mode<?>(5);
                int i = 0;
                while (i < 3) {
                    D s = snapshot d;
                    Sys.print(s.get());
                    d.n = d.n + 10;
                    i = i + 1;
                }
            }
        }
        """)
        assert interp.output == ["5", "15", "25"]

    def test_snapshot_result_passed_as_argument(self):
        interp = run(self.DYN + """
        class Consumer@mode<full_throttle> {
            int eat(D@mode<full_throttle> d) { return d.get(); }
        }
        class Main {
            void main() {
                D d = new D@mode<?>(50);
                D@mode<full_throttle> s =
                    snapshot d [full_throttle, full_throttle];
                Consumer c = new Consumer();
                Sys.print(c.eat(s));
            }
        }
        """)
        assert interp.output == ["50"]

    def test_snapshot_bound_by_class_var(self):
        check(self.DYN + """
        class Wrapper@mode<X> {
            int go(D d) {
                D s = snapshot d [_, X];
                return s.get();
            }
        }
        class Main { void main() { } }
        """)

    def test_double_snapshot_distinct_objects(self):
        interp = run(self.DYN + """
        class Main {
            void main() {
                D d = new D@mode<?>(3);
                D a = snapshot d;
                D b = snapshot d;
                Sys.print(a == b);
            }
        }
        """)
        # First snapshot lazily tags in place, second copies.
        assert interp.output == ["false"]
