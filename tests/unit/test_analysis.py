"""Unit tests for the repro.analysis subsystem.

Covers the dataflow transfer functions (on hand-built ASTs and pure
fact algebra), the obligation pass's classifications — including every
must-NOT-elide case (variable-bound snapshots, mode-variable receivers,
method-attributor re-evaluation, subclass attributors widening the
hull) — the planner annotations, the report, and the CLI surface.
"""

import json
import pathlib

import pytest

from repro.analysis import (ELIDED, RESIDUAL, STATIC, DFALL,
                            SNAPSHOT_BOUND, MCASE_ELIM, ModeFact,
                            analyze_program, plan_elisions)
from repro.analysis.modeflow import (hull_fact, join_envs, join_facts,
                                     refine)
from repro.analysis.obligations import ProgramAnalyzer
from repro.core.modes import BOTTOM, TOP, Mode, ModeLattice
from repro.lang import ast_nodes as ast
from repro.lang.typechecker import check_program
from repro.lang.types import ObjectType

ROOT = pathlib.Path(__file__).resolve().parents[2]
MODES = "modes { energy_saver <= managed; managed <= full_throttle; }\n"
ES, MA, FT = (Mode("energy_saver"), Mode("managed"),
              Mode("full_throttle"))
LATTICE = ModeLattice.linear(
    ["energy_saver", "managed", "full_throttle"])


def sites_of(body, kind=None):
    report = analyze_program(check_program(MODES + body))
    return [s for s in report.sites
            if kind is None or s.kind == kind]


# ---------------------------------------------------------------------------
# Fact algebra (the dataflow domain)


def test_join_facts_widens_to_cover_both():
    a = ModeFact.exact(ES)
    b = ModeFact.exact(FT)
    assert join_facts(a, b, LATTICE) == ModeFact(ES, FT)


def test_join_facts_none_absorbs():
    assert join_facts(None, ModeFact.exact(MA), LATTICE) is None
    assert join_facts(ModeFact.exact(MA), None, LATTICE) is None


def test_join_envs_keeps_only_common_variables():
    a = {"x": ModeFact.exact(ES), "y": ModeFact.exact(MA)}
    b = {"x": ModeFact.exact(MA)}
    merged = join_envs(a, b, LATTICE)
    assert merged == {"x": ModeFact(ES, MA)}


def test_refine_tightens_intersection():
    wide = ModeFact(BOTTOM, TOP)
    hull = ModeFact(MA, FT)
    assert refine(wide, hull, LATTICE) == ModeFact(MA, FT)
    tight = refine(ModeFact(BOTTOM, ES), ModeFact(ES, FT), LATTICE)
    assert tight == ModeFact.exact(ES)


def test_hull_fact_spans_the_mode_set():
    assert hull_fact(frozenset({ES, FT}), LATTICE) == ModeFact(ES, FT)
    assert hull_fact(frozenset({MA}), LATTICE) == ModeFact.exact(MA)


# ---------------------------------------------------------------------------
# Statement transfer functions on hand-built ASTs


def _analyzer():
    checked = check_program(MODES + """
class C@mode<?X> { attributor { return managed; } C() { } }
class Main { void main() { } }
""")
    return ProgramAnalyzer(checked)


def _local(name):
    var = ast.Var(name=name)
    var.resolved_kind = "local"
    return var


def _new_at(mode):
    node = ast.New(class_name="C")
    node.resolved_type = ObjectType("C", (mode,))
    return node


def test_if_transfer_joins_branch_facts():
    analyzer = _analyzer()
    env = {}
    stmt = ast.If(
        cond=ast.BoolLit(),
        then=ast.Block(stmts=[
            ast.Assign(target=_local("x"), value=_new_at(ES))]),
        otherwise=ast.Block(stmts=[
            ast.Assign(target=_local("x"), value=_new_at(FT))]))
    analyzer._visit_stmt(stmt, env)
    assert env["x"] == ModeFact(ES, FT)


def test_if_transfer_drops_one_sided_facts():
    analyzer = _analyzer()
    env = {}
    stmt = ast.If(
        cond=ast.BoolLit(),
        then=ast.Block(stmts=[
            ast.Assign(target=_local("x"), value=_new_at(ES))]))
    analyzer._visit_stmt(stmt, env)
    assert "x" not in env


def test_while_transfer_invalidates_loop_assigned_locals():
    analyzer = _analyzer()
    env = {"x": ModeFact.exact(MA), "y": ModeFact.exact(ES)}
    stmt = ast.While(
        cond=ast.BoolLit(),
        body=ast.Block(stmts=[
            ast.Assign(target=_local("x"), value=ast.NullLit())]))
    analyzer._visit_stmt(stmt, env)
    assert "x" not in env
    assert env["y"] == ModeFact.exact(ES)


def test_trycatch_transfer_drops_body_assigned_facts():
    analyzer = _analyzer()
    env = {"kept": ModeFact.exact(MA)}
    stmt = ast.TryCatch(
        body=ast.Block(stmts=[
            ast.Assign(target=_local("x"), value=_new_at(FT))]),
        exc_class="EnergyException", exc_var="e",
        handler=ast.Block(stmts=[]))
    analyzer._visit_stmt(stmt, env)
    # x is only bound on the no-throw path; the entry fact survives.
    assert "x" not in env
    assert env["kept"] == ModeFact.exact(MA)


def test_local_decl_and_overwrite():
    analyzer = _analyzer()
    env = {}
    analyzer._visit_stmt(
        ast.LocalVarDecl(name="x", init=_new_at(MA)), env)
    assert env["x"] == ModeFact.exact(MA)
    analyzer._visit_stmt(
        ast.Assign(target=_local("x"), value=ast.NullLit()), env)
    assert "x" not in env


# ---------------------------------------------------------------------------
# Obligation pass: elidable cases


def test_snapshot_vacuous_bounds_elided_and_dfall_from_hull():
    sites = sites_of("""
class C@mode<?X> {
    attributor { return managed; }
    C() { }
    int work() { return 1; }
}
class Main {
    void main() {
        C c = snapshot (new C@mode<?>());
        Sys.print(c.work());
    }
}
""")
    bounds = [s for s in sites if s.kind == SNAPSHOT_BOUND]
    dfalls = [s for s in sites if s.kind == DFALL]
    assert [s.status for s in bounds] == [ELIDED]
    assert "vacuous" in bounds[0].reason
    assert [s.status for s in dfalls] == [ELIDED]


def test_snapshot_tight_bounds_elided_via_attributor_hull():
    sites = sites_of("""
class C@mode<?X> {
    attributor { return managed; }
    C() { }
}
class Main {
    void main() {
        C c = snapshot (new C@mode<?>()) [managed, managed];
        Sys.print(1);
    }
}
""", SNAPSHOT_BOUND)
    assert [s.status for s in sites] == [ELIDED]
    assert "managed" in sites[0].reason


def test_concrete_construction_gives_exact_fact():
    sites = sites_of("""
class C@mode<full_throttle> {
    int work() { return 1; }
}
class Main {
    void main() {
        C c = new C();
        Sys.print(c.work());
    }
}
""", DFALL)
    assert [s.status for s in sites] == [ELIDED]


def test_self_call_is_static():
    sites = sites_of("""
class C@mode<?X> {
    attributor { return managed; }
    C() { }
    int a() { return b(); }
    int b() { return 1; }
}
class Main { void main() { } }
""", DFALL)
    assert [s.status for s in sites] == [STATIC]
    assert "self message" in sites[0].reason


# ---------------------------------------------------------------------------
# Obligation pass: must-NOT-elide cases


def test_variable_bound_snapshot_and_downstream_dfall_residual():
    # The crawler pattern: inside a dynamic-class method the sender
    # mode is unknown and the snapshot bound is a mode variable — both
    # the bound check and the downstream message must stay dynamic.
    sites = sites_of("""
class S@mode<?X> {
    int n;
    attributor {
        if (n > 10) { return full_throttle; }
        return energy_saver;
    }
    S(int n) { this.n = n; }
    int crawl() { return n; }
}
class A@mode<?X> {
    attributor { return managed; }
    A() { }
    int work(int k) {
        S s = snapshot (new S@mode<?>(k)) [_, X];
        return s.crawl();
    }
}
class Main { void main() { } }
""")
    bound = [s for s in sites if s.kind == SNAPSHOT_BOUND][0]
    assert bound.status == RESIDUAL
    assert "mode variable" in bound.reason
    crawl = [s for s in sites
             if s.kind == DFALL and "S.crawl" in s.description][0]
    assert crawl.status == RESIDUAL


def test_mode_variable_receiver_residual():
    sites = sites_of("""
class Engine@mode<?X> {
    attributor { return managed; }
    Engine() { }
    int run() { return 3; }
}
class Car@mode<?X> {
    Engine@mode<X> engine;
    attributor { return managed; }
    Car(Engine@mode<X> e) { this.engine = e; }
    int drive() { return engine.run(); }
}
class Main { void main() { } }
""", DFALL)
    drive = [s for s in sites if "Engine.run" in s.description][0]
    assert drive.status == RESIDUAL
    assert "mode-variable receiver" in drive.reason


def test_method_attributor_call_residual():
    sites = sites_of("""
class S@mode<?X> {
    attributor { return energy_saver; }
    S() { }
    @mode<?Y> int save()
    attributor { return managed; }
    { return 2; }
}
class Main {
    void main() {
        S s = snapshot (new S@mode<?>());
        Sys.print(s.save());
    }
}
""", DFALL)
    save = [s for s in sites if "S.save" in s.description][0]
    assert save.status == RESIDUAL
    assert "attributor re-evaluates" in save.reason


def test_subclass_attributor_widens_hull_blocking_bound_elision():
    source = """
class B@mode<?X> {
    attributor { return energy_saver; }
    B() { }
    int id() { return 0; }
}
class Wide@mode<?Y> extends B {
    attributor { return full_throttle; }
    Wide() { }
}
class Main {
    void main() {
        B b = snapshot (new B@mode<?>()) [_, energy_saver];
        Sys.print(b.id());
    }
}
"""
    sites = sites_of(source, SNAPSHOT_BOUND)
    assert [s.status for s in sites] == [RESIDUAL]
    assert "outside the bounds" in sites[0].reason
    # Positive control: without the subclass the same snapshot elides.
    control = sites_of(source.replace(
        """class Wide@mode<?Y> extends B {
    attributor { return full_throttle; }
    Wide() { }
}
""", ""), SNAPSHOT_BOUND)
    assert [s.status for s in control] == [ELIDED]


def test_mcase_elimination_always_residual():
    sites = sites_of("""
class C@mode<?X> {
    attributor { return managed; }
    C() { }
    mcase<int> factor = mcase{
        energy_saver: 1; managed: 2; full_throttle: 4;
    };
    int work() { return factor; }
}
class Main { void main() { } }
""", MCASE_ELIM)
    assert sites
    assert all(s.status == RESIDUAL for s in sites)


# ---------------------------------------------------------------------------
# Examples, planner, report, CLI


EXAMPLES = sorted((ROOT / "examples" / "ent").glob("*.ent"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_every_example_has_a_provable_elision(path):
    report = analyze_program(check_program(path.read_text()),
                             file=path.name)
    assert report.counts[ELIDED] >= 1, report.render()


def test_plan_elisions_annotates_the_ast():
    checked = check_program(MODES + """
class C@mode<?X> {
    attributor { return managed; }
    C() { }
    int work() { return 1; }
}
class Main {
    void main() {
        C c = snapshot (new C@mode<?>());
        Sys.print(c.work());
    }
}
""")
    report = plan_elisions(checked)
    elided = report.elided_sites()
    assert elided
    for site in elided:
        if site.kind == DFALL:
            assert site.node.elide_dfall is True
        elif site.kind == SNAPSHOT_BOUND:
            assert site.node.elide_bound is True


def test_report_counts_and_serialization():
    path = EXAMPLES[0]
    report = analyze_program(check_program(path.read_text()),
                             file=path.name)
    payload = report.as_dict()
    assert payload["file"] == path.name
    assert set(payload["counts"]) == {STATIC, ELIDED, RESIDUAL}
    assert sum(payload["counts"].values()) == len(report.sites)
    for check in payload["checks"]:
        assert {"kind", "context", "description", "status", "reason",
                "line", "column", "site_id", "target_class", "span",
                "loop_depth", "local_trips"} <= set(check)
        span = check["span"]
        assert span["line"] == check["line"]
        assert span["column"] == check["column"]
        if check["status"] == RESIDUAL:
            assert "firings_bound" in check
            assert "cost_bound" in check
    # by_kind totals must agree with the flat counts.
    totals = {status: 0 for status in (STATIC, ELIDED, RESIDUAL)}
    for bucket in payload["by_kind"].values():
        for status, count in bucket.items():
            totals[status] += count
    assert totals == payload["counts"]
    assert "check site" in report.render()


def test_cli_analyze_json(capsys):
    from repro.cli import main

    rc = main(["analyze", str(EXAMPLES[0]), "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"][ELIDED] >= 1


def test_cli_analyze_embedded_json(tmp_path, capsys):
    from repro.cli import main

    target = tmp_path / "prog.py"
    target.write_text("""
from repro.core.modes import ModeLattice
from repro.runtime.embedded import EntRuntime
rt = EntRuntime(ModeLattice.linear(["low", "mid", "high"]))

@rt.static("high")
class Burner:
    def go(self):
        pass

def main():
    b = Burner()
    with rt.booted("mid"):
        b.go()
""")
    rc = main(["analyze", "--embedded", str(target), "--json"])
    assert rc == 1  # E002 is an error finding
    payload = json.loads(capsys.readouterr().out)
    codes = [f["code"] for f in payload["findings"]]
    assert codes == ["E002"]


def test_cli_run_no_elide_matches_default(capsys):
    from repro.cli import main

    path = str(ROOT / "examples" / "ent" / "coadapt.ent")
    assert main(["run", path]) == 0
    default_out = capsys.readouterr().out
    assert main(["run", path, "--no-elide"]) == 0
    assert capsys.readouterr().out == default_out


# ---------------------------------------------------------------------------
# static-vs-observed (the runtime oracle for the elision plan)


class _FakeProfile:
    """Duck-typed stand-in: static_vs_observed reads only check_sites."""

    def __init__(self, check_sites):
        self.check_sites = check_sites


def _site_report(body=None):
    source = MODES + (body or """
class C@mode<?X> {
    attributor { return energy_saver; }
    C() { }
    int go() { return 1; }
}
class Main {
    void main() {
        C c = snapshot (new C@mode<?>());
        c.go();
    }
}
""")
    return analyze_program(check_program(source), file="prog.ent")


def test_checksite_site_id_scheme():
    report = _site_report()
    for site in report.sites:
        if site.line is None:
            assert site.site_id == f"{site.kind}@?"
        else:
            assert site.site_id \
                == f"{site.kind}@{site.line}:{site.column}"
    assert any(s.site_id != f"{s.kind}@?" for s in report.sites)
    payload = report.sites[0].as_dict()
    assert payload["site_id"] == report.sites[0].site_id


def test_static_vs_observed_clean_when_elided_sites_silent():
    from repro.analysis import static_vs_observed

    report = _site_report()
    elided = [s for s in report.sites if s.status == ELIDED]
    assert elided, "fixture must have at least one elided site"
    observed = {s.site_id: {"kind": s.kind, "executed": 0, "elided": 3}
                for s in elided}
    diff = static_vs_observed(report, _FakeProfile(observed))
    assert diff.clean
    assert len(diff.matches) == len(observed)
    assert "clean" in diff.render()


def test_static_vs_observed_flags_fired_elided_site():
    from repro.analysis import static_vs_observed

    report = _site_report()
    site = next(s for s in report.sites if s.status == ELIDED)
    observed = {site.site_id: {"kind": site.kind,
                               "executed": 2, "elided": 0}}
    diff = static_vs_observed(report, _FakeProfile(observed))
    assert not diff.clean
    assert diff.violations[0]["site"] == site.site_id
    assert "elided" in diff.violations[0]["reason"]
    assert "VIOLATION" in diff.render()
    assert diff.as_dict()["clean"] is False


def test_static_vs_observed_flags_unknown_located_site():
    from repro.analysis import static_vs_observed

    report = _site_report()
    observed = {"dfall@999:0": {"kind": "dfall",
                                "executed": 1, "elided": 0}}
    diff = static_vs_observed(report, _FakeProfile(observed))
    assert not diff.clean
    assert "unknown" in diff.violations[0]["reason"]


def test_static_vs_observed_tolerates_unlocatable_sites():
    from repro.analysis import static_vs_observed

    report = _site_report()
    observed = {"dfall@?": {"kind": "dfall", "executed": 5, "elided": 0},
                "dfall@Agent.run": {"kind": "dfall",
                                    "executed": 9, "elided": 0}}
    diff = static_vs_observed(report, _FakeProfile(observed))
    assert diff.clean
    assert len(diff.unlocated) == 2
    assert "outside the analysis scope" in diff.render()


_RESIDUAL_LOOP = """
class C@mode<?X> {
    attributor { return managed; }
    C() { }
    mcase<int> factor = mcase{
        energy_saver: 1; managed: 2; full_throttle: 4;
    };
    int work() { return factor; }
}
class Main {
    void main() {
        C c = snapshot (new C@mode<?>());
        int i = 0;
        while (i < 7) {
            c.work();
            i = i + 1;
        }
    }
}
"""


def test_static_vs_observed_residual_sites_may_fire():
    from repro.analysis import static_vs_observed

    report = _site_report(_RESIDUAL_LOOP)
    residual = [s for s in report.sites if s.status == RESIDUAL]
    assert residual, "fixture must have at least one residual site"
    # Every residual site sits in C.work, entered once per trip of the
    # counted 7-trip loop: firing exactly at the bound is clean.
    assert all(s.firings.count == 7 for s in residual)
    observed = {s.site_id: {"kind": s.kind, "executed": 7, "elided": 0}
                for s in residual}
    diff = static_vs_observed(report, _FakeProfile(observed))
    assert diff.clean
    assert all("predicted" in row for row in diff.matches)
    assert all(row.get("bound") == 7 for row in diff.matches)


def test_static_vs_observed_flags_bound_overrun():
    from repro.analysis import static_vs_observed

    report = _site_report(_RESIDUAL_LOOP)
    residual = [s for s in report.sites if s.status == RESIDUAL]
    observed = {s.site_id: {"kind": s.kind, "executed": 8, "elided": 0}
                for s in residual}
    diff = static_vs_observed(report, _FakeProfile(observed))
    assert not diff.clean
    assert all("static residual bound" in row["reason"]
               for row in diff.violations)


def test_static_vs_observed_unreachable_residual_must_not_fire():
    from repro.analysis import static_vs_observed

    report = _site_report("""
class C@mode<?X> {
    attributor { return managed; }
    C() { }
    mcase<int> factor = mcase{
        energy_saver: 1; managed: 2; full_throttle: 4;
    };
    int work() { return factor; }
}
class Main { void main() { } }
""")
    residual = [s for s in report.sites if s.status == RESIDUAL]
    assert residual and all(s.firings.count == 0 for s in residual)
    observed = {s.site_id: {"kind": s.kind, "executed": 7, "elided": 0}
                for s in residual}
    diff = static_vs_observed(report, _FakeProfile(observed))
    assert not diff.clean


# ---------------------------------------------------------------------------
# Per-site loop depth / span regression on the worked examples

#: (kind, status, "line:col", loop_depth, firings_bound) for every
#: check site, in report order.  These pin the analyze --json surface
#: on the paper's two worked examples: change one deliberately or not
#: at all.
WORKED_EXAMPLE_SITES = {
    "crawler": [
        (MCASE_ELIM, RESIDUAL, "34:17", 0, 3),
        (SNAPSHOT_BOUND, RESIDUAL, "56:18", 0, 3),
        (DFALL, RESIDUAL, "57:16", 0, 3),
        (SNAPSHOT_BOUND, ELIDED, "64:19", 0, 1),
        (DFALL, ELIDED, "66:44", 0, 1),
        (DFALL, ELIDED, "68:46", 0, 1),
        (DFALL, ELIDED, "71:44", 0, 1),
    ],
    "sensors": [
        (MCASE_ELIM, RESIDUAL, "34:17", 0, 4),
        (SNAPSHOT_BOUND, RESIDUAL, "49:21", 0, 4),
        (DFALL, RESIDUAL, "50:16", 0, 4),
        (SNAPSHOT_BOUND, ELIDED, "57:22", 0, 1),
        (DFALL, ELIDED, "59:37", 0, 1),
        (DFALL, ELIDED, "60:38", 0, 1),
        (DFALL, ELIDED, "62:41", 0, 1),
        (DFALL, ELIDED, "65:44", 0, 1),
    ],
}


@pytest.mark.parametrize("stem", sorted(WORKED_EXAMPLE_SITES))
def test_analyze_json_worked_example_sites(stem):
    path = ROOT / "examples" / "ent" / f"{stem}.ent"
    report = analyze_program(check_program(path.read_text()),
                             file=path.name)
    payload = report.as_dict()
    got = [(c["kind"], c["status"],
            f"{c['line']}:{c['column']}",
            c["loop_depth"], c["firings_bound"])
           for c in payload["checks"]]
    assert got == WORKED_EXAMPLE_SITES[stem]
    for check in payload["checks"]:
        assert check["span"]["line"] == check["line"]
        assert check["span"]["column"] == check["column"]


def test_analyze_json_worked_example_rollups():
    crawler = analyze_program(check_program(
        (ROOT / "examples" / "ent" / "crawler.ent").read_text()))
    rollup = crawler.as_dict()["residual_cost"]
    assert rollup["program"] == {"residual_sites": 3,
                                 "firings_bound": 9,
                                 "full_units_bound": 18,
                                 "transient_units_bound": 9}
    assert set(rollup["by_class"]) == {"Site"}
    sensors = analyze_program(check_program(
        (ROOT / "examples" / "ent" / "sensors.ent").read_text()))
    rollup = sensors.as_dict()["residual_cost"]
    assert rollup["program"] == {"residual_sites": 3,
                                 "firings_bound": 12,
                                 "full_units_bound": 24,
                                 "transient_units_bound": 12}
    assert set(rollup["by_class"]) == {"Reading"}


def test_analyze_json_loop_depth_counts_nesting():
    report = analyze_program(check_program(MODES + """
class C@mode<?X> {
    attributor { return managed; }
    C() { }
    int work() { return 1; }
}
class Main {
    void main() {
        C@mode<?> c = new C@mode<?>();
        int i = 0;
        while (i < 2) {
            int j = 0;
            while (j < 3) {
                C s = snapshot c [managed, managed];
                s.work();
                j = j + 1;
            }
            i = i + 1;
        }
    }
}
"""))
    payload = report.as_dict()
    depths = {c["kind"]: c["loop_depth"] for c in payload["checks"]}
    assert depths[SNAPSHOT_BOUND] == 2
    assert depths[DFALL] == 2
