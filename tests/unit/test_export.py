"""Unit tests for the JSON figure export."""

import json

import pytest

from repro.eval.export import FIGURES, export_all, figure_data


class TestFigureData:
    def test_figure7_matches_config(self):
        data = figure_data("figure7")
        assert len(data) == 15
        assert {"name", "workload", "qos"} <= set(data[0])

    def test_figure10_shape(self):
        data = figure_data("figure10", seed=1)
        assert len(data) == 15
        row = data[0]
        assert set(row["energy_j"]) == {"energy_saver", "managed",
                                        "full_throttle"}
        assert row["energy_proportional"] is True
        assert row["percent_saved"]["full_throttle"] == 0.0

    def test_figure9_shape(self):
        data = figure_data("figure9", seed=1)
        assert len(data) == 45
        for bar in data:
            assert bar["percent_saved"] > 0
            assert bar["ent_normalized"] <= bar["silent_normalized"]

    def test_figure11_traces_decimated(self):
        data = figure_data("figure11", seed=1)
        assert len(data) == 10  # 5 benchmarks x {ent, java}
        for row in data:
            assert len(row["trace"]) <= 201
            times = [t for t, _ in row["trace"]]
            assert times == sorted(times)

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            figure_data("figure99")


class TestExportAll:
    def test_writes_valid_json(self, tmp_path):
        paths = export_all(directory=str(tmp_path),
                           figures=["figure7", "figure10"], seed=2)
        assert set(paths) == {"figure7", "figure10"}
        for path in paths.values():
            data = json.loads(open(path).read())
            assert isinstance(data, list) and data

    def test_figures_constant_complete(self):
        assert set(FIGURES) == {"figure6", "figure7", "figure8",
                                "figure9", "figure10", "figure11"}
