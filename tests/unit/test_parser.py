"""Unit tests for the ENT parser."""

import pytest

from repro.core.errors import EntSyntaxError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_expression, parse_program

MODES = "modes { energy_saver <= managed; managed <= full_throttle; }\n"


class TestModesDecl:
    def test_pairs(self):
        program = parse_program(MODES)
        assert program.modes[0].pairs == [
            ("energy_saver", "managed"), ("managed", "full_throttle")]

    def test_chain_clause(self):
        program = parse_program("modes { a <= b <= c; }")
        assert program.modes[0].pairs == [("a", "b"), ("b", "c")]

    def test_singleton(self):
        program = parse_program("modes { solo; }")
        assert program.modes[0].singletons == ["solo"]

    def test_missing_semicolon(self):
        with pytest.raises(EntSyntaxError):
            parse_program("modes { a <= b }")


class TestClassDecl:
    def test_plain_class(self):
        program = parse_program("class C { }")
        cls = program.classes[0]
        assert cls.name == "C"
        assert cls.mode_param is None
        assert cls.superclass == "Object"

    def test_concrete_mode(self):
        cls = parse_program("class C@mode<managed> { }").classes[0]
        assert cls.mode_param.var == "managed"
        assert not cls.mode_param.dynamic

    def test_dynamic_anonymous(self):
        cls = parse_program("class C@mode<?> { attributor { return x; } }"
                            ).classes[0]
        assert cls.mode_param.dynamic
        assert cls.mode_param.var is None

    def test_dynamic_named(self):
        cls = parse_program("class C@mode<?X> { attributor { return x; } }"
                            ).classes[0]
        assert cls.mode_param.dynamic
        assert cls.mode_param.var == "X"

    def test_bounded_parameter(self):
        cls = parse_program("class C@mode<lo <= X <= hi> { }").classes[0]
        param = cls.mode_param
        assert (param.lower, param.var, param.upper) == ("lo", "X", "hi")

    def test_upper_bounded_parameter(self):
        cls = parse_program("class C@mode<X <= hi> { }").classes[0]
        assert cls.mode_param.var == "X"
        assert cls.mode_param.upper == "hi"
        assert cls.mode_param.lower is None

    def test_multiple_parameters(self):
        cls = parse_program("class C@mode<?X, Y> { attributor "
                            "{ return x; } }").classes[0]
        assert cls.mode_param.var == "X"
        assert cls.extra_params[0].var == "Y"

    def test_extends_with_mode_args(self):
        cls = parse_program(
            "class C@mode<X> extends D@mode<X> { }").classes[0]
        assert cls.superclass == "D"
        assert cls.super_mode_args[0].name == "X"

    def test_fields_methods_constructor_attributor(self):
        source = """
        class C@mode<?X> {
            int count;
            String name = "c";
            attributor { return managed; }
            C(int count) { this.count = count; }
            int get() { return count; }
        }
        """
        cls = parse_program(source).classes[0]
        assert [f.name for f in cls.fields] == ["count", "name"]
        assert cls.attributor is not None
        assert cls.constructor is not None
        assert [m.name for m in cls.methods] == ["get"]

    def test_duplicate_attributor_rejected(self):
        source = ("class C@mode<?> { attributor { return a; } "
                  "attributor { return b; } }")
        with pytest.raises(EntSyntaxError):
            parse_program(source)

    def test_method_mode_annotation(self):
        source = ("class C { @mode<full_throttle> int heavy() "
                  "{ return 1; } }")
        method = parse_program(source).classes[0].methods[0]
        assert method.mode_param.var == "full_throttle"

    def test_method_attributor(self):
        source = ("class C { @mode<?X> int f(int n) "
                  "attributor { return managed; } { return n; } }")
        method = parse_program(source).classes[0].methods[0]
        assert method.attributor is not None
        assert method.mode_param.dynamic


class TestStatements:
    def _body(self, stmts):
        source = f"class C {{ void m() {{ {stmts} }} }}"
        return parse_program(source).classes[0].methods[0].body.stmts

    def test_local_decl(self):
        (stmt,) = self._body("int x = 3;")
        assert isinstance(stmt, ast.LocalVarDecl)
        assert stmt.name == "x"

    def test_local_decl_class_type(self):
        (stmt,) = self._body("Agent a = null;")
        assert isinstance(stmt, ast.LocalVarDecl)
        assert isinstance(stmt.declared, ast.ClassTypeNode)

    def test_local_decl_with_mode(self):
        (stmt,) = self._body("Site@mode<X> s = null;")
        assert stmt.declared.mode_args[0].name == "X"

    def test_assignment_vs_expression(self):
        stmts = self._body("x = 1; f();")
        assert isinstance(stmts[0], ast.Assign)
        assert isinstance(stmts[1], ast.ExprStmt)

    def test_field_assignment(self):
        (stmt,) = self._body("this.f = 1;")
        assert isinstance(stmt.target, ast.FieldAccess)

    def test_invalid_assign_target(self):
        with pytest.raises(EntSyntaxError):
            self._body("f() = 1;")

    def test_if_else_while(self):
        stmts = self._body(
            "if (a < b) { x = 1; } else { x = 2; } while (true) { break; }")
        assert isinstance(stmts[0], ast.If)
        assert stmts[0].otherwise is not None
        assert isinstance(stmts[1], ast.While)

    def test_foreach(self):
        (stmt,) = self._body("foreach (String s : items) { continue; }")
        assert isinstance(stmt, ast.Foreach)
        assert stmt.var_name == "s"

    def test_try_catch_throw(self):
        stmts = self._body(
            'try { throw "bad"; } catch (EnergyException e) { return; }')
        assert isinstance(stmts[0], ast.TryCatch)
        assert stmts[0].exc_var == "e"

    def test_return_value(self):
        (stmt,) = self._body("return 1 + 2;")
        assert isinstance(stmt, ast.Return)
        assert isinstance(stmt.expr, ast.Binary)


class TestExpressions:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_logical_precedence(self):
        expr = parse_expression("a && b || c")
        assert expr.op == "||"

    def test_comparison(self):
        expr = parse_expression("a.size() >= 10")
        assert expr.op == ">="
        assert isinstance(expr.left, ast.MethodCall)

    def test_unary(self):
        expr = parse_expression("!done")
        assert isinstance(expr, ast.Unary)
        expr = parse_expression("-x + 1")
        assert expr.op == "+"

    def test_new_with_mode(self):
        expr = parse_expression("new Site@mode<?>(url)")
        assert isinstance(expr, ast.New)
        assert expr.mode_args[0].dynamic

    def test_chained_calls(self):
        expr = parse_expression("a.b().c.d(1, 2)")
        assert isinstance(expr, ast.MethodCall)
        assert expr.name == "d"
        assert len(expr.args) == 2

    def test_snapshot_plain(self):
        expr = parse_expression("snapshot da")
        assert isinstance(expr, ast.Snapshot)
        assert expr.lower is None

    def test_snapshot_bounded(self):
        expr = parse_expression("snapshot ds [_, X]")
        assert expr.lower.name is None
        assert expr.upper.name == "X"

    def test_mcase_expression(self):
        expr = parse_expression(
            "mcase<int>{ energy_saver: 1; managed: 2; default: 3; }")
        assert isinstance(expr, ast.MCaseExpr)
        assert len(expr.branches) == 3
        assert expr.branches[2].mode_name is None

    def test_mselect(self):
        expr = parse_expression("mselect(this.depth, managed)")
        assert isinstance(expr, ast.MSelect)
        assert expr.mode_name == "managed"

    def test_cast(self):
        expr = parse_expression("(Site) e")
        assert isinstance(expr, ast.Cast)

    def test_cast_with_mode(self):
        expr = parse_expression("(Site@mode<X>) items.get(0)")
        assert isinstance(expr, ast.Cast)
        assert expr.target.mode_args[0].name == "X"

    def test_parenthesized_not_cast(self):
        expr = parse_expression("(a) + b")
        assert isinstance(expr, ast.Binary)

    def test_list_literal(self):
        expr = parse_expression("[1, 2, 3]")
        assert isinstance(expr, ast.ListLit)
        assert len(expr.elements) == 3

    def test_instanceof(self):
        expr = parse_expression("r instanceof LocalOnlyRule")
        assert isinstance(expr, ast.InstanceOf)

    def test_string_concat(self):
        expr = parse_expression('"n=" + 4')
        assert isinstance(expr.left, ast.StringLit)

    def test_this(self):
        expr = parse_expression("this.field")
        assert isinstance(expr.obj, ast.This)

    def test_literals(self):
        assert parse_expression("true").value is True
        assert isinstance(parse_expression("null"), ast.NullLit)
        assert parse_expression("2.5").value == 2.5
