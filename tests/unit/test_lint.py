"""Unit tests for ent-lint (static checking of embedded-ENT Python)."""

import pytest

from repro.runtime.lint import lint_source

PRELUDE = """
from repro.runtime import EntRuntime
rt = EntRuntime.standard()

@rt.dynamic
class Agent:
    def attributor(self):
        return "managed"
    def work(self):
        return 1

@rt.static("full_throttle")
class Heavy:
    def burn(self):
        return 1

@rt.static("energy_saver")
class Light:
    def flicker(self):
        return 1
"""


def codes(source):
    return [f.code for f in lint_source(PRELUDE + source)]


class TestMessageBeforeSnapshot:
    def test_flagged(self):
        assert "E001" in codes("""
def main():
    a = Agent()
    a.work()
""")

    def test_snapshot_rebind_clears(self):
        assert codes("""
def main():
    a = Agent()
    a = rt.snapshot(a)
    a.work()
""") == []

    def test_snapshot_to_new_name(self):
        assert codes("""
def main():
    da = Agent()
    a = rt.snapshot(da)
    a.work()
""") == []

    def test_attributor_call_not_flagged(self):
        # The attributor is the one thing evaluated pre-snapshot.
        assert codes("""
def main():
    a = Agent()
    a.attributor()
""") == []

    def test_unmanaged_class_not_flagged(self):
        assert codes("""
class Plain:
    def go(self):
        return 1

def main():
    p = Plain()
    p.go()
""") == []

    def test_reassignment_forgets(self):
        assert codes("""
def main():
    a = Agent()
    a = make_something_else()
    a.work()
""") == []

    def test_branch_join_conservative(self):
        # Snapshot on only one branch: still dynamic on the other, but
        # the conservative join must not *wrongly* flag the snapshotted
        # state as dynamic — it forgets, producing no finding.
        assert "E001" not in codes("""
def main(flag):
    a = Agent()
    if flag:
        a = rt.snapshot(a)
    a.work()
""")

    def test_both_branches_dynamic_still_flagged(self):
        assert "E001" in codes("""
def main(flag):
    if flag:
        a = Agent()
    else:
        a = Agent()
    a.work()
""")


class TestStaticWaterfall:
    def test_violation_in_low_boot(self):
        assert "E002" in codes("""
def main():
    h = Heavy()
    with rt.booted("energy_saver"):
        h.burn()
""")

    def test_downhill_ok(self):
        assert codes("""
def main():
    l = Light()
    with rt.booted("full_throttle"):
        l.flicker()
""") == []

    def test_equal_mode_ok(self):
        assert codes("""
def main():
    h = Heavy()
    with rt.booted("full_throttle"):
        h.burn()
""") == []

    def test_outside_booted_not_flagged(self):
        # Outside a booted block the closure runs at TOP.
        assert codes("""
def main():
    h = Heavy()
    h.burn()
""") == []

    def test_nested_boot_uses_innermost(self):
        assert "E002" in codes("""
def main():
    h = Heavy()
    with rt.booted("full_throttle"):
        with rt.booted("energy_saver"):
            h.burn()
""")

    def test_dynamic_boot_mode_not_flagged(self):
        # A non-literal boot target: nothing provable statically.
        assert codes("""
def main(agent):
    h = Heavy()
    with rt.booted(agent):
        h.burn()
""") == []


class TestSnapshotHygiene:
    def test_discarded_snapshot(self):
        assert "E003" in codes("""
def main():
    a = Agent()
    rt.snapshot(a)
""")

    def test_unbounded_snapshot_in_booted_warns(self):
        assert "W101" in codes("""
def main(agent):
    with rt.booted(agent):
        t = Agent()
        s = rt.snapshot(t)
""")

    def test_bounded_snapshot_in_booted_ok(self):
        assert "W101" not in codes("""
def main(agent):
    with rt.booted(agent):
        t = Agent()
        s = rt.snapshot(t, upper="managed")
""")

    def test_unbounded_outside_booted_ok(self):
        assert "W101" not in codes("""
def main():
    t = Agent()
    s = rt.snapshot(t)
""")


class TestScopesAndReporting:
    def test_methods_of_managed_classes_skipped(self):
        # Self-messaging inside a managed class is the internal view.
        assert codes("") == []

    def test_findings_sorted_and_located(self):
        findings = lint_source(PRELUDE + """
def main():
    a = Agent()
    a.work()
""")
        assert len(findings) == 1
        assert findings[0].line > 0
        assert "snapshot" in str(findings[0])

    def test_nested_function_fresh_scope(self):
        assert "E001" in codes("""
def outer():
    def inner():
        a = Agent()
        a.work()
    return inner
""")

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            lint_source("def broken(:")
