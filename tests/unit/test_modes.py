"""Unit tests for the mode lattice (repro.core.modes)."""

import pytest

from repro.core.errors import ModeLatticeError, UnknownModeError
from repro.core.modes import BOTTOM, TOP, Mode, ModeLattice


class TestMode:
    def test_interning(self):
        assert Mode("managed") is Mode("managed")

    def test_equality_by_name(self):
        assert Mode("a_mode") == Mode("a_mode")
        assert Mode("a_mode") != Mode("b_mode")

    def test_str(self):
        assert str(Mode("energy_saver")) == "energy_saver"

    def test_invalid_name_rejected(self):
        with pytest.raises(ModeLatticeError):
            Mode("not a mode")

    def test_empty_name_rejected(self):
        with pytest.raises(ModeLatticeError):
            Mode("")

    def test_hashable(self):
        assert len({Mode("x1"), Mode("x1"), Mode("x2")}) == 2


@pytest.fixture
def chain():
    return ModeLattice.linear(["energy_saver", "managed", "full_throttle"])


class TestModeLattice:
    def test_linear_order(self, chain):
        es, mg, ft = (Mode("energy_saver"), Mode("managed"),
                      Mode("full_throttle"))
        assert chain.leq(es, mg)
        assert chain.leq(mg, ft)
        assert chain.leq(es, ft)  # transitivity
        assert not chain.leq(ft, es)

    def test_reflexive(self, chain):
        for mode in chain:
            assert chain.leq(mode, mode)

    def test_top_bottom(self, chain):
        for mode in chain:
            assert chain.leq(BOTTOM, mode)
            assert chain.leq(mode, TOP)

    def test_declared_modes_excludes_top_bottom(self, chain):
        names = {m.name for m in chain.declared_modes}
        assert names == {"energy_saver", "managed", "full_throttle"}
        assert TOP not in chain.declared_modes
        assert BOTTOM not in chain.declared_modes

    def test_contains(self, chain):
        assert Mode("managed") in chain
        assert Mode("imaginary") not in chain

    def test_unknown_mode_raises(self, chain):
        with pytest.raises(UnknownModeError):
            chain.leq(Mode("imaginary"), Mode("managed"))

    def test_join_meet_chain(self, chain):
        es, ft = Mode("energy_saver"), Mode("full_throttle")
        assert chain.join(es, ft) == ft
        assert chain.meet(es, ft) == es

    def test_join_meet_identity(self, chain):
        mg = Mode("managed")
        assert chain.join(mg, mg) == mg
        assert chain.meet(mg, mg) == mg

    def test_clamp(self, chain):
        es, mg, ft = (Mode("energy_saver"), Mode("managed"),
                      Mode("full_throttle"))
        assert chain.clamp(mg, es, ft)
        assert not chain.clamp(ft, es, mg)
        assert chain.clamp(mg, mg, mg)

    def test_cycle_rejected(self):
        with pytest.raises(ModeLatticeError):
            ModeLattice.from_names([("la", "lb"), ("lb", "la")])

    def test_self_loop_allowed(self):
        # a <= a is just reflexivity, not a cycle.
        lattice = ModeLattice.from_names([("solo", "solo")])
        assert lattice.leq(Mode("solo"), Mode("solo"))

    def test_incomparable_modes_with_bounds_form_lattice(self):
        # A diamond: bot <= {left, right} <= top via TOP/BOTTOM only is
        # NOT enough: two incomparable modes join at TOP, which is
        # unique, so this is a lattice.
        lattice = ModeLattice.from_names([], extra_modes=["left", "right"])
        assert lattice.join(Mode("left"), Mode("right")) == TOP
        assert lattice.meet(Mode("left"), Mode("right")) == BOTTOM
        assert not lattice.comparable(Mode("left"), Mode("right"))

    def test_non_lattice_rejected(self):
        # Two maximal elements above two minimal elements: {a,b} have
        # two incomparable upper bounds {c,d} below TOP -> no unique
        # least upper bound.
        with pytest.raises(ModeLatticeError):
            ModeLattice.from_names([("na", "nc"), ("na", "nd"),
                                    ("nb", "nc"), ("nb", "nd")])

    def test_chain_topological(self, chain):
        ordered = chain.chain()
        assert [m.name for m in ordered] == ["energy_saver", "managed",
                                             "full_throttle"]

    def test_up_down_sets(self, chain):
        mg = Mode("managed")
        up = {m.name for m in chain.up_set(mg)}
        assert "full_throttle" in up and "managed" in up
        assert "energy_saver" not in up
        down = {m.name for m in chain.down_set(mg)}
        assert "energy_saver" in down and "managed" in down
        assert "full_throttle" not in down

    def test_two_independent_chains(self):
        lattice = ModeLattice.from_names(
            [("c_es", "c_mg"), ("c_mg", "c_ft"),
             ("t_oh", "t_hot"), ("t_hot", "t_safe")])
        assert lattice.leq(Mode("c_es"), Mode("c_ft"))
        assert not lattice.comparable(Mode("c_es"), Mode("t_hot"))

    def test_equality(self):
        a = ModeLattice.linear(["p1", "p2"])
        b = ModeLattice.linear(["p1", "p2"])
        assert a == b

    def test_singleton_lattice(self):
        lattice = ModeLattice.linear(["only"])
        assert Mode("only") in lattice
        assert lattice.leq(Mode("only"), TOP)
