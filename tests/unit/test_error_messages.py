"""Error-message quality: diagnostics must point at the problem and
carry source locations (the debuggability story of section 6.3 depends
on actionable errors)."""

import pytest

from repro.core.errors import (EnergyException, EntSyntaxError,
                               EntTypeError, WaterfallError)
from repro.lang import check_program, run_source

MODES = "modes { energy_saver <= managed; managed <= full_throttle; }\n"


def type_error(source):
    with pytest.raises(EntTypeError) as exc_info:
        check_program(MODES + source)
    return str(exc_info.value)


class TestLocations:
    def test_syntax_error_has_line_and_column(self):
        with pytest.raises(EntSyntaxError) as exc_info:
            check_program("class C { int f( }")
        message = str(exc_info.value)
        assert ":1:" in message

    def test_type_error_has_location(self):
        message = type_error("""
        class Main { void main() { int x = "nope"; } }
        """)
        assert "<ent>:" in message
        assert "not assignable" in message

    def test_waterfall_error_names_both_modes_and_method(self):
        message = type_error("""
        class Heavy@mode<full_throttle> { int f() { return 1; } }
        class Low@mode<energy_saver> {
            int go(Heavy h) { return h.f(); }
        }
        class Main { void main() { } }
        """)
        assert "full_throttle" in message
        assert "energy_saver" in message
        assert "Heavy.f" in message

    def test_snapshot_first_hint(self):
        message = type_error("""
        class D@mode<?X> {
            attributor { return managed; }
            int f() { return 1; }
        }
        class Main {
            void main() { D d = new D(); int x = d.f(); }
        }
        """)
        assert "snapshot" in message

    def test_mcase_coverage_lists_missing_modes(self):
        message = type_error("""
        class Main {
            void main() { mcase<int> x = mcase{ managed: 1; }; }
        }
        """)
        assert "energy_saver" in message
        assert "full_throttle" in message

    def test_unknown_variable_named(self):
        message = type_error("""
        class Main { void main() { frobnicate = 1; } }
        """)
        assert "frobnicate" in message

    def test_bound_violation_names_bound(self):
        message = type_error("""
        class Bounded@mode<managed <= X <= full_throttle> { }
        class Main {
            void main() { Bounded b = new Bounded@mode<energy_saver>(); }
        }
        """)
        assert "lower bound managed" in message


class TestRuntimeMessages:
    def test_bad_check_names_mode_and_bounds(self):
        source = MODES + """
        class D@mode<?X> {
            attributor { return full_throttle; }
            D() { }
        }
        class Main {
            void main() { D d = snapshot (new D@mode<?>()) [_, managed]; }
        }
        """
        with pytest.raises(EnergyException) as exc_info:
            run_source(source)
        message = str(exc_info.value)
        assert "full_throttle" in message
        assert "managed" in message
        # Structured fields for programmatic handlers.
        assert exc_info.value.mode.name == "full_throttle"
        assert exc_info.value.upper.name == "managed"

    def test_missing_branch_lists_available(self):
        source = MODES + """
        class Main {
            void main() {
                mcase<int> x = mcase{ managed: 1; default: 0; };
                Sys.print(mselect(x, managed));
            }
        }
        """
        interp = run_source(source)
        assert interp.output == ["1"]
