"""Profiling must be observation-transparent on every engine.

The profiler reads timestamps and counts events; it must never change
what a program computes.  This suite proves it the same way the
tracing-transparency suite does: run every example, every workload
kernel, and random generated programs with profiling on and off, on
all three engines, and require bit-identical observables (outcome,
output, stats — including ``steps``, since instrumentation must not
perturb the interpreter's own accounting).

It also pins the tentpole's check-level guarantees:

* **Elided-site silence** — no check *fires* at a site the planner
  elided: the profile's per-site ``executed`` count is 0 wherever the
  analysis said ``elided`` (the property behind
  ``static_vs_observed``'s clean verdict).
* **Residual totals** — summed per-site executed/elided counts equal
  the interpreter's own stats counters, on every engine, so the
  profile is exact, not sampled.
* **Cross-engine check invariance** — the per-site check counts are
  identical across walk/compiled/vm.
"""

import pathlib

import pytest
from hypothesis import given, settings

from repro.analysis import analyze_program, static_vs_observed
from repro.core.errors import (EnergyException, EntRuntimeError,
                               FuelExhausted)
from repro.lang.interp import Interpreter, InterpOptions, NullPlatform
from repro.lang.typechecker import check_program
from repro.obs.prof import Profiler

from test_soundness import programs  # type: ignore
from test_compiler_agreement import KERNEL_PROGRAMS  # type: ignore

_ROOT = pathlib.Path(__file__).resolve().parents[2]

FIXED_PROGRAMS = sorted(
    str(p.relative_to(_ROOT))
    for p in (_ROOT / "examples" / "ent").glob("*.ent"))

ENGINES = ("walk", "compiled", "vm")


def run_engine(source: str, engine: str, battery: float = 0.6,
               elide: bool = True, profile: bool = False):
    """Returns ``(observables, profile, analysis_report, stats)``.

    ``observables`` includes the *full* stats dict — ``steps`` too:
    profiling must not change how many steps the engine itself counts.
    """

    class _Battery(NullPlatform):
        def battery_fraction(self):
            return battery

    checked = check_program(source)
    report = None
    if elide:
        report = analyze_program(checked, annotate=True, file="<test>")
    profiler = Profiler(engine) if profile else None
    interp = Interpreter(
        checked, platform=_Battery(),
        options=InterpOptions(engine=engine, fuel=500_000),
        profiler=profiler)
    try:
        interp.run()
        outcome = ("ok", None)
    except EnergyException as exc:
        outcome = ("energy", str(exc))
    except FuelExhausted:
        outcome = ("fuel", None)
    except EntRuntimeError as exc:
        outcome = ("error", type(exc).__name__, str(exc))
    stats = interp.stats.as_dict()
    observables = (outcome, tuple(interp.output), tuple(sorted(stats.items())))
    return (observables,
            profiler.profile if profiler is not None else None,
            report, stats)


def check_counts(profile):
    return {sid: (entry["executed"], entry["elided"])
            for sid, entry in profile.check_sites.items()}


@pytest.mark.parametrize("path", FIXED_PROGRAMS)
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("elide", [False, True], ids=["checks", "elide"])
def test_examples_profiling_transparent(path, engine, elide):
    source = (_ROOT / path).read_text()
    plain, _, _, _ = run_engine(source, engine, elide=elide)
    profiled, profile, _, _ = run_engine(source, engine, elide=elide,
                                         profile=True)
    assert plain == profiled
    assert profile.total_time >= 0.0


@pytest.mark.parametrize("index", range(len(KERNEL_PROGRAMS)),
                         ids=["accumulate", "pagerank", "crypto"])
@pytest.mark.parametrize("engine", ENGINES)
def test_workload_kernels_profiling_transparent(index, engine):
    source = KERNEL_PROGRAMS[index]
    plain, _, _, _ = run_engine(source, engine)
    profiled, profile, _, _ = run_engine(source, engine, profile=True)
    assert plain == profiled
    assert profile.registry.histograms, "kernel must attribute time"


@pytest.mark.parametrize("path", FIXED_PROGRAMS)
@pytest.mark.parametrize("engine", ENGINES)
def test_no_check_fires_at_elided_sites(path, engine):
    """The static-vs-observed oracle, as a property: every site the
    planner marked (fully) elided shows zero executed checks."""
    source = (_ROOT / path).read_text()
    _, profile, report, _ = run_engine(source, engine, profile=True)
    diff = static_vs_observed(report, profile)
    assert diff.clean, diff.render()
    predicted = {}
    for site in report.sites:
        predicted.setdefault(site.site_id, []).append(site.status)
    for sid, entry in profile.check_sites.items():
        statuses = predicted.get(sid)
        if statuses and all(status == "elided" for status in statuses):
            assert entry["executed"] == 0, (sid, entry)


@pytest.mark.parametrize("path", FIXED_PROGRAMS)
@pytest.mark.parametrize("engine", ENGINES)
def test_profile_check_totals_match_stats(path, engine):
    """The profile is exact: summed per-site counters equal the
    interpreter's own stats counters."""
    source = (_ROOT / path).read_text()
    _, profile, _, stats = run_engine(source, engine, profile=True)
    totals = profile.check_totals()
    dfall = totals.get("dfall", {"executed": 0, "elided": 0})
    bound = totals.get("snapshot_bound", {"executed": 0, "elided": 0})
    assert dfall["executed"] == stats["dfall_checks"]
    assert dfall["elided"] == stats["dfall_elided"]
    assert bound["executed"] == stats["bound_checks"]
    assert bound["elided"] == stats["bound_checks_elided"]


@pytest.mark.parametrize("path", FIXED_PROGRAMS)
def test_check_sites_invariant_across_engines(path):
    source = (_ROOT / path).read_text()
    profiles = [run_engine(source, engine, profile=True)[1]
                for engine in ENGINES]
    counts = [check_counts(profile) for profile in profiles]
    assert counts[0] == counts[1] == counts[2]


@pytest.mark.parametrize("index", [0, 1], ids=["accumulate", "pagerank"])
def test_kernel_check_sites_invariant_across_engines(index):
    source = KERNEL_PROGRAMS[index]
    profiles = [run_engine(source, engine, profile=True)[1]
                for engine in ENGINES]
    counts = [check_counts(profile) for profile in profiles]
    assert counts[0] == counts[1] == counts[2]


@settings(max_examples=20, deadline=None)
@given(programs())
def test_random_programs_profiling_transparent(source):
    for engine in ("walk", "vm"):
        plain, _, _, _ = run_engine(source, engine, elide=False)
        profiled, _, _, _ = run_engine(source, engine, elide=False,
                                       profile=True)
        assert plain == profiled


@settings(max_examples=15, deadline=None)
@given(programs())
def test_random_programs_static_vs_observed_clean(source):
    for engine in ("walk", "vm"):
        _, profile, report, _ = run_engine(source, engine, profile=True)
        diff = static_vs_observed(report, profile)
        assert diff.clean, diff.render()
