"""Cache-transparency tests for the PR-3 hot-path caches.

Every cache added for performance — the interpreter/compiler inline
caches (``InterpOptions.inline_caches``), the constraint-set memo
(``ConstraintSet.MEMOIZE``), and the embedded runtime's dfall memo —
must be invisible to observable behaviour: outputs, every ``InterpStats``
counter, and raised ``EnergyException``s are bit-identical with caches
on and off.  See docs/PERFORMANCE.md.
"""

import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import ConstraintSet
from repro.core.errors import EnergyException, FuelExhausted
from repro.core.modes import Mode, ModeLattice
from repro.lang.interp import (Interpreter, InterpOptions, NullPlatform,
                               run_source)
from repro.lang.typechecker import check_program
from repro.runtime import EntRuntime

# Reuse the soundness generator: its programs cover snapshots, bounds,
# messaging, mode cases, loops and exception handlers.
from test_soundness import programs  # type: ignore

ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = sorted((ROOT / "examples" / "ent").glob("*.ent"))


def run_config(source, *, compile_flag, inline_caches, battery=0.6):
    class _Battery(NullPlatform):
        def battery_fraction(self):
            return battery

    checked = check_program(source)
    interp = Interpreter(
        checked, platform=_Battery(),
        options=InterpOptions(compile=compile_flag, fuel=500_000,
                              inline_caches=inline_caches))
    try:
        interp.run()
        outcome = "ok"
    except EnergyException as exc:
        outcome = f"energy: {exc}"
    except FuelExhausted:
        outcome = "fuel"
    # The *full* stats dict: the caches may not shift a single counter,
    # including steps (tick placement is independent of cache hits).
    return outcome, tuple(interp.output), interp.stats.as_dict()


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
@pytest.mark.parametrize("compile_flag", [False, True],
                         ids=["walk", "compiled"])
def test_examples_identical_with_and_without_caches(path, compile_flag):
    source = path.read_text()
    cached = run_config(source, compile_flag=compile_flag,
                        inline_caches=True)
    uncached = run_config(source, compile_flag=compile_flag,
                          inline_caches=False)
    assert cached == uncached


@settings(max_examples=30, deadline=None)
@given(programs(), st.booleans())
def test_random_programs_identical_with_and_without_caches(
        source, compile_flag):
    cached = run_config(source, compile_flag=compile_flag,
                        inline_caches=True)
    uncached = run_config(source, compile_flag=compile_flag,
                          inline_caches=False)
    assert cached == uncached


# ---------------------------------------------------------------------------
# ConstraintSet.MEMOIZE


def _without_memo():
    class _Ctx:
        def __enter__(self):
            self._saved = ConstraintSet.MEMOIZE
            ConstraintSet.MEMOIZE = False

        def __exit__(self, *exc):
            ConstraintSet.MEMOIZE = self._saved

    return _Ctx()


_atoms = st.sampled_from(["low", "mid", "high", "X", "Y", "Z"])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(_atoms, _atoms), max_size=6),
       st.tuples(_atoms, _atoms))
def test_entailment_identical_without_memo(pairs, query):
    lattice = ModeLattice.linear(["low", "mid", "high"])

    def atom(name):
        return Mode(name) if name in ("low", "mid", "high") else name

    constraints = [(atom(a), atom(b)) for a, b in pairs]
    q = (atom(query[0]), atom(query[1]))
    memoized = ConstraintSet(lattice, constraints).entails_one(*q)
    with _without_memo():
        plain = ConstraintSet(lattice, constraints).entails_one(*q)
    assert memoized == plain


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(_atoms, _atoms), max_size=6),
       st.sampled_from(["X", "Y", "Z"]))
def test_solve_range_identical_without_memo(pairs, var):
    lattice = ModeLattice.linear(["low", "mid", "high"])

    def atom(name):
        return Mode(name) if name in ("low", "mid", "high") else name

    constraints = [(atom(a), atom(b)) for a, b in pairs]
    memoized = ConstraintSet(lattice, constraints).solve_range(var)
    with _without_memo():
        plain = ConstraintSet(lattice, constraints).solve_range(var)
    assert memoized == plain


def test_typechecking_and_run_identical_without_memo():
    source = (ROOT / "examples" / "ent" / "coadapt.ent").read_text()
    with_memo = run_source(source)
    with _without_memo():
        without = run_source(source)
    assert with_memo.output == without.output
    assert with_memo.stats.as_dict() == without.stats.as_dict()


# ---------------------------------------------------------------------------
# Embedded runtime dfall memo


def _drive_runtime():
    """Messages across modes, including a waterfall violation."""
    rt = EntRuntime.standard()

    @rt.dynamic
    class Site:
        def __init__(self, n):
            self.n = n

        def attributor(self):
            return "full_throttle" if self.n > 10 else "energy_saver"

        def poke(self):
            return self.n

    verdicts = []
    for n in (5, 50, 5, 50, 5):
        site = rt.snapshot(Site(n))
        for ctx in ("energy_saver", "managed", "full_throttle"):
            with rt.booted(ctx):
                try:
                    site.poke()
                    verdicts.append((n, ctx, "ok"))
                except EnergyException:
                    verdicts.append((n, ctx, "energy"))
    return verdicts, rt.stats.as_dict()


def test_embedded_dfall_memo_transparent():
    # The second run hits a warm memo everywhere the first run warmed
    # it; a third with a fresh runtime is fully cold.  All identical.
    first = _drive_runtime()
    second = _drive_runtime()
    assert first == second
