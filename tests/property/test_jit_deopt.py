"""Deoptimization testing for the trace-JIT tier.

The JIT specializes hot call sites on the receiver class recorded in
the site's inline cache.  When the guard fails at run time — the site
went polymorphic after compilation — the emitted code must fall back
to the VM's generic send and keep going, with results, check counts
and blame messages bit-identical to the plain VM.  These tests force
that path: thresholds are dropped to 1-2 so bodies compile almost
immediately, then the receiver class is swapped under the compiled
code's feet.
"""

from hypothesis import given, settings

from repro.core.errors import (EnergyException, EntRuntimeError,
                               FuelExhausted)
from repro.lang.interp import Interpreter, InterpOptions, NullPlatform
from repro.lang.typechecker import check_program

from test_soundness import programs  # type: ignore


def run(source: str, engine: str, battery: float = 0.6,
        hot_call: int = None, hot_loop: int = None):
    """Run ``source`` and return (outcome, output, stats-minus-steps,
    interp).  ``hot_call``/``hot_loop`` override the JIT thresholds."""

    class _Battery(NullPlatform):
        def battery_fraction(self):
            return battery

    interp = Interpreter(
        check_program(source), platform=_Battery(),
        options=InterpOptions(engine=engine, fuel=500_000))
    if engine == "jit":
        if hot_call is not None:
            interp._vm._hot_call = hot_call
        if hot_loop is not None:
            interp._vm._hot_loop = hot_loop
    try:
        interp.run()
        outcome = ("ok", None)
    except EnergyException as exc:
        outcome = ("energy", str(exc))
    except FuelExhausted:
        outcome = ("fuel", None)
    except EntRuntimeError as exc:
        outcome = ("error", type(exc).__name__, str(exc))
    stats = interp.stats.as_dict()
    del stats["steps"]
    return outcome, tuple(interp.output), stats, interp


# A monomorphic warm-up followed by a receiver-class swap: ``sum``
# compiles with an identity guard on Base (its site's cache is mono
# after the first VM-tier call), then every ``b.val()`` in the Sub run
# misses the guard.
_SWAP_PROGRAM = """
modes { low <= high; }

class Base {
    int val() { return 1; }
}

class Sub extends Base {
    int val() { return 2; }
}

class Driver {
    int sum(Base b, int n) {
        int acc = 0;
        int i = 0;
        while (i < n) { acc = acc + b.val(); i = i + 1; }
        return acc;
    }
}

class Main {
    void main() {
        Driver d = new Driver();
        Base mono = new Base();
        Base poly = new Sub();
        int warm = d.sum(mono, 40) + d.sum(mono, 40);
        int cold = d.sum(poly, 40) + d.sum(poly, 40);
        int mixed = 0;
        int k = 0;
        while (k < 8) {
            if (k % 2 == 0) { mixed = mixed + d.sum(mono, 25); }
            else { mixed = mixed + d.sum(poly, 25); }
            k = k + 1;
        }
        Sys.print("warm=" + warm + " cold=" + cold + " mixed=" + mixed);
    }
}
"""


def test_forced_deopt_matches_vm():
    """Guard failures mid-run: the JIT deoptimizes to the generic send
    and the observable results stay identical to the plain VM."""
    reference = run(_SWAP_PROGRAM, "vm")[:3]
    outcome, output, stats, interp = run(_SWAP_PROGRAM, "jit",
                                         hot_call=2, hot_loop=2)
    assert (outcome, output, stats) == reference
    vm = interp._vm
    assert vm.jit_compiles > 0, "sum should have tiered up"
    assert vm.jit_deopts > 0, "the Sub run should miss the Base guard"


def test_deopt_limit_invalidates_and_recompiles():
    """Past the deopt limit the compiled version is thrown away; the
    body re-tiers with its grown (now polymorphic) cache and stops
    speculating, so deopts do not accumulate forever."""
    outcome, _, _, interp = run(_SWAP_PROGRAM, "jit",
                                hot_call=2, hot_loop=2)
    assert outcome == ("ok", None)
    vm = interp._vm
    assert vm.jit_invalidations >= 1
    # The recompile happened: more compiles than invalidations alone
    # would explain for a single body is not guaranteed, but the log
    # must show some body at version >= 2.
    assert any(version >= 2 for _, version in vm.jit_compiled)


_BLAME_PROGRAM = """
modes { energy_saver <= managed; managed <= full_throttle; }

class Site@mode<?X> {
    List resources;
    attributor {
        if (resources.size() > 200) { return full_throttle; }
        if (resources.size() > 50) { return managed; }
        return energy_saver;
    }
    Site(int n) {
        this.resources = new List();
        int i = 0;
        while (i < n) { resources.add(i); i = i + 1; }
    }
    mcase<int> depth = mcase{
        energy_saver: 1; managed: 2; full_throttle: 3;
    };
    int crawl() { return depth; }
}

class Agent@mode<?X> {
    attributor {
        if (Ext.battery() >= 0.75) { return full_throttle; }
        if (Ext.battery() >= 0.50) { return managed; }
        return energy_saver;
    }
    Agent() { }
    int work(int n) {
        Site ds = new Site(n);
        Site s = snapshot ds [_, X];
        int acc = 0;
        int i = 0;
        while (i < 12) { acc = acc + s.crawl(); i = i + 1; }
        return acc;
    }
}

class Main {
    void main() {
        Agent da = new Agent();
        Agent a = snapshot da;
        int warm = 0;
        int k = 0;
        while (k < 6) { warm = warm + a.work(40); k = k + 1; }
        Sys.print("warm=" + warm);
        Sys.print("hot=" + a.work(300));
    }
}
"""


def test_dfall_blame_parity_under_jit():
    """A dynamic-waterfall failure raised from JIT-compiled code (the
    warm-up calls tier ``Agent.work`` up before the oversized Site
    snapshots above the agent's mode) must carry the same blame
    message as the walk and the VM."""
    for battery in (0.9, 0.6):
        walked = run(_BLAME_PROGRAM, "walk", battery=battery)[:3]
        vm = run(_BLAME_PROGRAM, "vm", battery=battery)[:3]
        jit = run(_BLAME_PROGRAM, "jit", battery=battery,
                  hot_call=1, hot_loop=1)[:3]
        assert walked == vm == jit
    # Sanity: the mid-battery run actually trips the waterfall.
    assert run(_BLAME_PROGRAM, "walk", battery=0.6)[0][0] == "energy"


@settings(max_examples=20, deadline=None)
@given(programs())
def test_random_programs_agree_under_forced_tiering(source):
    """Thresholds of 1 force every body through the compile pipeline
    (or an explicit bailout) on generated programs; observables must
    still match the reference walk byte for byte."""
    walked = run(source, "walk")[:3]
    jit = run(source, "jit", hot_call=1, hot_loop=1)[:3]
    assert walked == jit
