"""Property tests for the fleet's config/state split and seeding.

The fleet service rests on three refactors, each with a crisp
invariant this module exercises across seeds and systems:

* **Platform config/state split** — a :class:`PlatformState` survives
  ``pickle`` and, restored into any platform built from the same
  :class:`PlatformConfig`, steps float-for-float identically to the
  platform it was captured from; ``Platform.reset`` is bit-equal to
  fresh construction.
* **Embedded-runtime device split** — an :class:`EmbeddedDeviceState`
  pickles and restores onto a *shared* runtime (one lattice, one dfall
  memo, one set of instrumented classes) with identical subsequent
  semantics and stats.
* **SplitMix seeding** — per-device parameter derivation is a pure
  function of ``(seed, index)``; streams pickle; no step of an episode
  ever constructs a fresh ``random.Random``.
"""

import pickle
import random

from repro.core.rng import SplitMix64, derive_seed, splitmix64
from repro.fleet import FleetSpec, device_params
from repro.fleet.device import DeviceApp, run_device
from repro.platform.systems import (PlatformState, make_platform,
                                    platform_from_config, system_config)
from repro.runtime.embedded import EmbeddedDeviceState, EntRuntime

SYSTEMS = ("A", "B", "C")
SEEDS = (0, 7, 991)


def _exercise(platform, rng):
    """A deterministic-from-rng mix of every platform op."""
    for _ in range(6):
        op = rng.below(5)
        if op == 0:
            platform.cpu_work(2.0 + rng.below(8))
        elif op == 1:
            platform.net_bytes(1.0e4 * (1 + rng.below(4)))
        elif op == 2:
            platform.io_bytes(5.0e4)
        elif op == 3:
            platform.sleep(0.01 * (1 + rng.below(5)))
        else:
            platform.battery.drain(0.5)


class TestPlatformStatePickle:
    def test_state_survives_pickle_with_identical_stepping(self):
        for system in SYSTEMS:
            for seed in SEEDS:
                config = system_config(system)
                original = platform_from_config(config, seed=seed,
                                                battery_fraction=0.9)
                _exercise(original, SplitMix64(seed))
                state = original.capture_state()
                clone_state = pickle.loads(pickle.dumps(state))
                assert clone_state == state
                restored = platform_from_config(config)
                restored.restore_state(clone_state)
                # Identical subsequent stepping, float for float.
                _exercise(original, SplitMix64(seed + 1))
                _exercise(restored, SplitMix64(seed + 1))
                assert restored.capture_state() == \
                    original.capture_state()

    def test_reset_is_bit_equal_to_fresh_construction(self):
        for system in SYSTEMS:
            for seed in SEEDS:
                config = system_config(system)
                fresh = platform_from_config(config, seed=seed,
                                             battery_fraction=0.7)
                reused = platform_from_config(config, seed=seed + 999,
                                              battery_fraction=0.1)
                _exercise(reused, SplitMix64(3))  # dirty it thoroughly
                reused.reset(seed, battery_fraction=0.7)
                assert reused.capture_state() == fresh.capture_state()
                _exercise(fresh, SplitMix64(5))
                _exercise(reused, SplitMix64(5))
                assert reused.capture_state() == fresh.capture_state()

    def test_platform_from_config_matches_system_class(self):
        for system in SYSTEMS:
            direct = make_platform(system, seed=4, battery_fraction=0.8)
            from_config = platform_from_config(system_config(system),
                                               seed=4,
                                               battery_fraction=0.8)
            _exercise(direct, SplitMix64(9))
            _exercise(from_config, SplitMix64(9))
            assert from_config.capture_state() == direct.capture_state()

    def test_shared_config_not_duplicated(self):
        # The immutable half really is shared: platforms built from one
        # config alias its CpuSpec (and the config is hashable, so the
        # fleet can key caches on it).
        config = system_config("B")
        p1 = platform_from_config(config)
        p2 = platform_from_config(config)
        assert p1.cpu.spec is config.cpu
        assert p2.cpu.spec is config.cpu
        assert hash(config) == hash(system_config("B"))

    def test_state_is_small_and_flat(self):
        # The per-device struct must stay cheap to ship between
        # processes — a few hundred bytes beyond the ~4 KB Mersenne
        # state, never a platform object graph.
        state = make_platform("A").capture_state()
        assert isinstance(state, PlatformState)
        assert len(pickle.dumps(state)) < 6000


class TestEmbeddedDeviceStatePickle:
    def _runtime_with_agent(self, seed):
        platform = make_platform("A", seed=seed, battery_fraction=0.6)
        rt = EntRuntime.standard(platform)

        @rt.dynamic
        class Agent:
            def attributor(self):
                return ("full_throttle" if rt.ext.battery() >= 0.5
                        else "energy_saver")

            def work(self):
                return rt.ext.battery()

        return platform, rt, Agent

    def test_state_survives_pickle_onto_shared_runtime(self):
        for seed in SEEDS:
            platform, rt, agent_cls = self._runtime_with_agent(seed)
            agent = rt.snapshot(agent_cls())
            with rt.booted(agent):
                agent.work()
            state = rt.capture_device_state(agent=agent)
            clone = pickle.loads(pickle.dumps(state))
            assert clone == state

            # A different runtime sharing only immutable config.
            platform2, rt2, agent_cls2 = self._runtime_with_agent(seed)
            agent2 = agent_cls2()
            rt2.restore_device_state(clone, agent=agent2)
            assert rt2.stats.as_dict() == rt.stats.as_dict()
            assert rt2.current_mode is rt.current_mode
            # Identical subsequent semantics: same mode decisions,
            # same counter movement.  dfall_memo_hits is excluded: the
            # verdict memo belongs to the (possibly shared) runtime,
            # not to the device — rt's memo is warm, rt2's is cold.
            for r, a in ((rt, agent), (rt2, agent2)):
                snap = r.snapshot(a)
                with r.booted(snap):
                    snap.work()

            def semantic(stats):
                counters = stats.as_dict()
                counters.pop("dfall_memo_hits")
                return counters

            assert semantic(rt2.stats) == semantic(rt.stats)

    def test_reset_device_restores_boot_state(self):
        platform, rt, agent_cls = self._runtime_with_agent(0)
        agent = rt.snapshot(agent_cls())
        with rt.booted(agent):
            agent.work()
        assert rt.stats.messages > 0
        rt.reset_device()
        assert rt.stats.as_dict() == EntRuntime.standard().stats.as_dict()
        assert rt.current_mode.name == "$top"

    def test_device_app_shares_tables_across_devices(self):
        # One DeviceApp per runtime: the instrumented classes and the
        # per-archetype mode-case tables are built once and reused for
        # every device seated on the runtime.
        spec = FleetSpec(devices=4, seed=1)
        rt = EntRuntime.standard()
        app = DeviceApp(rt, spec)
        plans_before = {name: case for name, case in app.plans.items()}
        config = system_config("A")
        platform = platform_from_config(config)
        for index in range(spec.devices):
            params = device_params(spec, index)
            platform.reset(params.platform_seed, params.start_fraction,
                           spec.battery_scale)
            rt.reset_device()
            rt.bind_platform(platform)
            run_device(platform, rt, app, params, steps=4)
        for name, case in app.plans.items():
            assert case is plans_before[name]


class TestSplitMixSeeding:
    def test_finalizer_reference_values(self):
        # splitmix64 is a fixed public algorithm; pin a few outputs so
        # a refactor cannot silently change every derived seed.
        assert splitmix64(0) == 0xE220A8397B1DCDAF
        assert splitmix64(1) == 0x910A2DEC89025CC1

    def test_derivation_is_pure(self):
        assert derive_seed(3, 1, 2) == derive_seed(3, 1, 2)
        assert derive_seed(3, 1, 2) != derive_seed(3, 2, 1)
        assert derive_seed(3, 1) != derive_seed(4, 1)

    def test_stream_pickles_and_resumes(self):
        stream = SplitMix64(derive_seed(9, 1))
        [stream.next_u64() for _ in range(5)]
        clone = pickle.loads(pickle.dumps(stream))
        assert [clone.next_u64() for _ in range(10)] == \
            [stream.next_u64() for _ in range(10)]

    def test_random_and_gauss_ranges(self):
        stream = SplitMix64(1234)
        values = [stream.random() for _ in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert len(set(values)) > 190  # not obviously degenerate
        draws = [stream.gauss(0.0, 1.0) for _ in range(200)]
        assert any(d < 0 for d in draws) and any(d > 0 for d in draws)

    def test_below_is_always_in_range(self):
        stream = SplitMix64(77)
        for bound in (1, 2, 3, 10, 1000, 1 << 31):
            for _ in range(20):
                assert 0 <= stream.below(bound) < bound

    def test_episode_never_constructs_fresh_python_rng(self):
        # The perf satellite: per-device randomness comes from the one
        # splitmix stream carried in DeviceParams (plus the platform's
        # own seeded RNG reused via reset) — stepping a device must not
        # instantiate random.Random anywhere on the hot path.
        spec = FleetSpec(devices=1, seed=6)
        params = device_params(spec, 0)
        platform = platform_from_config(system_config(params.system))
        platform.reset(params.platform_seed, params.start_fraction,
                       spec.battery_scale)
        rt = EntRuntime.standard()
        rt.bind_platform(platform)
        app = DeviceApp(rt, spec)
        constructed = []
        original = random.Random.__init__

        def counting(self, *args, **kwargs):
            constructed.append(args)
            return original(self, *args, **kwargs)

        random.Random.__init__ = counting
        try:
            run_device(platform, rt, app, params, spec.steps)
        finally:
            random.Random.__init__ = original
        assert constructed == []

    def test_fixed_seed_differential_determinism(self):
        # Same spec, derived twice from scratch: outcome-for-outcome
        # identical episodes (the differential test the RNG satellite
        # asks for).
        spec = FleetSpec(devices=6, seed=13)
        outcomes = []
        for _ in range(2):
            run = []
            for index in range(spec.devices):
                params = device_params(spec, index)
                platform = platform_from_config(
                    system_config(params.system))
                platform.reset(params.platform_seed,
                               params.start_fraction, spec.battery_scale)
                rt = EntRuntime.standard()
                rt.bind_platform(platform)
                run.append(run_device(platform, rt, DeviceApp(rt, spec),
                                      params, spec.steps))
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]
