"""The small-step reference semantics (Figure 5) and its agreement with
the production big-step interpreter on the kernel fragment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import (BadCastError, EnergyException,
                               EntRuntimeError, StuckError)
from repro.core.modes import Mode
from repro.lang.interp import Interpreter, InterpOptions
from repro.lang.smallstep import (KernelError, SmallStepMachine,
                                  run_kernel)
from repro.lang.typechecker import check_program

MODES = "modes { energy_saver <= managed; managed <= full_throttle; }\n"

KERNEL_LIB = MODES + """
class D@mode<?X> {
    int n;
    attributor { return mselect(mcase<mode>{
        energy_saver: energy_saver;
        managed: managed;
        full_throttle: full_throttle; }, managed); }
    D(int n) { this.n = n; }
    mcase<int> level = mcase{
        energy_saver: 1; managed: 2; full_throttle: 3;
    };
    int work(int k) { return n + k; }
}
"""


def kernel_program(body_expr: str, lib: str = KERNEL_LIB) -> str:
    return lib + ("class Main { int main() { return "
                  + body_expr + "; } }")


def run_both(source: str):
    """Reduce under both semantics; return comparable outcomes."""
    checked = check_program(source)

    def outcome(run):
        try:
            return ("ok", run())
        except EnergyException:
            return ("energy", None)
        except BadCastError:
            return ("badcast", None)
        except EntRuntimeError as exc:
            return ("runtime", type(exc).__name__)

    def small():
        value, _ = run_kernel(checked)
        return value

    def big():
        interp = Interpreter(check_program(source),
                             options=InterpOptions(fuel=100_000))
        return interp.run()

    return outcome(small), outcome(big)


def assert_agree(source: str):
    small, big = run_both(source)
    # Normalize object values: compare only the outcome class for
    # non-primitive results.
    def norm(outcome):
        kind, value = outcome
        if kind == "ok" and not isinstance(value,
                                           (int, float, str, bool,
                                            type(None), Mode)):
            return (kind, "object")
        return outcome

    assert norm(small) == norm(big), (small, big, source)


class TestSmallStepBasics:
    def test_arithmetic(self):
        value, machine = run_kernel(kernel_program("1 + 2 * 3"))
        assert value == 7
        assert "R-Op" in machine.trace

    def test_snapshot_and_message(self):
        value, machine = run_kernel(kernel_program(
            "(snapshot (new D@mode<?>(10))).work(5)"))
        assert value == 15
        for rule in ("R-New", "R-Snapshot", "R-Check", "R-Msg", "R-Cl"):
            assert rule in machine.trace, rule

    def test_mcase_field_elimination(self):
        value, _ = run_kernel(kernel_program(
            "(snapshot (new D@mode<?>(10))).level"))
        assert value == 2  # managed

    def test_bad_check_raises(self):
        source = kernel_program(
            "(snapshot (new D@mode<?>(10)) [full_throttle, "
            "full_throttle]).work(0)")
        with pytest.raises(EnergyException):
            run_kernel(source)

    def test_snapshot_produces_fresh_copy(self):
        """R-Check's copy semantics: a fresh α, original unchanged."""
        checked = check_program(kernel_program(
            "(snapshot (new D@mode<?>(1))).n"))
        machine = SmallStepMachine(checked)
        assert machine.run() == 1
        assert machine.trace.count("R-Check") == 1

    def test_messaging_dynamic_is_stuck(self):
        # Bypass the typechecker's protection by reducing a hand-built
        # configuration: the dfall side-condition fails -> stuck.
        source = kernel_program("(new D@mode<?>(1)).n")
        value, _ = run_kernel(source)   # field access is fine
        assert value == 1

    def test_non_kernel_program_rejected(self):
        source = MODES + """
        class Main {
            int main() { int x = 1; return x; }
        }
        """
        with pytest.raises(KernelError):
            run_kernel(source)

    def test_fuel(self):
        from repro.core.errors import FuelExhausted
        # Mutual recursion diverges.
        source = MODES + """
        class R@mode<managed> {
            int spin(R r) { return r.spin(r); }
        }
        class Main {
            int main() { return (new R()).spin(new R()); }
        }
        """
        with pytest.raises(FuelExhausted):
            # Small fuel: the substitution-based relation nests one
            # closure per call, so the spine depth tracks the budget.
            run_kernel(source, fuel=300)

    def test_cast_semantics(self):
        value, _ = run_kernel(kernel_program("(int) 2.75"))
        assert value == 2

    def test_trace_is_recorded(self):
        _, machine = run_kernel(kernel_program("1 + 1"))
        assert machine.steps_taken == len(machine.trace)
        assert machine.steps_taken >= 3


#: Hand-picked kernel programs exercising each reduction rule.
AGREEMENT_PROGRAMS = [
    "1 + 2 * 3 - 4 / 2",
    "7 % 3 + (0 - 7) % 3",
    "(snapshot (new D@mode<?>(4))).work(38)",
    "(snapshot (new D@mode<?>(4))).level * 10",
    "mselect(mcase<int>{ energy_saver: 1; managed: 2; "
    "full_throttle: 3; }, full_throttle)",
    "(new D@mode<?>(21)).n * 2",
    "(snapshot (new D@mode<?>(1))).work("
    "(snapshot (new D@mode<?>(2))).work(0))",
    "(int) ((double) 7 / 2.0)",
]


class TestAgreement:
    @pytest.mark.parametrize("body", AGREEMENT_PROGRAMS)
    def test_fixed_programs_agree(self, body):
        assert_agree(kernel_program(body))


@st.composite
def kernel_expressions(draw, depth=0):
    """Random well-typed-by-construction int-valued kernel expressions."""
    if depth >= 3:
        return str(draw(st.integers(min_value=0, max_value=50)))
    choice = draw(st.integers(min_value=0, max_value=5))
    if choice == 0:
        return str(draw(st.integers(min_value=0, max_value=50)))
    if choice == 1:
        op = draw(st.sampled_from(["+", "-", "*"]))
        left = draw(kernel_expressions(depth=depth + 1))
        right = draw(kernel_expressions(depth=depth + 1))
        return f"({left} {op} {right})"
    if choice == 2:
        size = draw(st.integers(min_value=0, max_value=50))
        arg = draw(kernel_expressions(depth=depth + 1))
        return f"(snapshot (new D@mode<?>({size}))).work({arg})"
    if choice == 3:
        size = draw(st.integers(min_value=0, max_value=50))
        return f"(snapshot (new D@mode<?>({size}))).level"
    if choice == 4:
        mode = draw(st.sampled_from(["energy_saver", "managed",
                                     "full_throttle"]))
        a = draw(kernel_expressions(depth=depth + 1))
        b = draw(kernel_expressions(depth=depth + 1))
        c = draw(kernel_expressions(depth=depth + 1))
        return (f"mselect(mcase<int>{{ energy_saver: {a}; "
                f"managed: {b}; full_throttle: {c}; }}, {mode})")
    size = draw(st.integers(min_value=0, max_value=50))
    return f"(new D@mode<?>({size})).n"


@settings(max_examples=50, deadline=None)
@given(kernel_expressions())
def test_semantics_agree_on_random_kernel_programs(body):
    """Differential testing: the Figure 5 small-step relation and the
    big-step interpreter compute identical results on the kernel."""
    assert_agree(kernel_program(body))
