"""End-to-end guarantees of transient checking (``--checks transient``):

* **Transparency** — on accepted programs every engine produces output
  bit-identical to full checking; when a check *fails*, the message is
  the full-mode message plus the documented
  `` [transient: site ...; blame ...]`` suffix and nothing else.
* **Engine agreement** — all four engines agree on transient output,
  on every ``InterpStats`` counter, and on the exact blame text.
* **Counter invariance** — ``dfall_checks``/``bound_checks``/
  ``snapshots`` are identical between full and transient mode (shallow
  probes count as the checks they replace), so profiles and the
  static-vs-observed oracle are check-mode-invariant.  Only
  ``shallow_checks`` and ``copies`` may differ, in transient's favour.
* **Blame map** — failures name the originating site: the tagging
  snapshot for re-snapshot and dfall failures, ``construction`` for
  objects born with a concrete mode.
"""

import pathlib
import re

import pytest

from repro.lang import run_source
from repro.lang.interp import InterpOptions
from repro.platform.systems import make_platform

ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = sorted((ROOT / "examples" / "ent").glob("*.ent"))
ENGINES = ("walk", "compiled", "vm", "jit")

#: The only permitted difference between full and transient output.
BLAME_SUFFIX = re.compile(r" \[transient[^\]]*\]")

#: Counters that must not care whether checks are deep or shallow.
MODE_INVARIANT = ("dfall_checks", "bound_checks", "snapshots",
                  "mcase_elims", "dfall_elided",
                  "bound_checks_elided")


def _run(path, engine, checks, battery=None):
    platform = None
    if battery is not None:
        platform = make_platform("A", seed=0, battery_fraction=battery)
    return run_source(path.read_text(),
                      platform=platform,
                      options=InterpOptions(engine=engine,
                                            checks=checks))


def _normalize(lines):
    return [BLAME_SUFFIX.sub("", line) for line in lines]


# ---------------------------------------------------------------------------
# Differential: full vs transient, across all four engines


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_transient_output_matches_full_modulo_blame(path):
    for engine in ENGINES:
        full = _run(path, engine, "full")
        transient = _run(path, engine, "transient")
        assert _normalize(transient.output) == full.output
        # Full mode never emits the suffix in the first place.
        assert full.output == _normalize(full.output)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_transient_engines_agree_exactly(path):
    reference = _run(path, "walk", "transient")
    for engine in ENGINES[1:]:
        other = _run(path, engine, "transient")
        assert other.output == reference.output, engine


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_check_counters_are_mode_and_engine_invariant(path):
    reference = None
    for engine in ENGINES:
        full = _run(path, engine, "full")
        transient = _run(path, engine, "transient")
        counters = {name: getattr(transient.stats, name)
                    for name in MODE_INVARIANT}
        for name in MODE_INVARIANT:
            assert getattr(full.stats, name) == counters[name], \
                (engine, name)
        assert full.stats.shallow_checks == 0
        assert transient.stats.copies <= full.stats.copies
        counters["shallow_checks"] = transient.stats.shallow_checks
        if reference is None:
            reference = counters
        else:
            assert counters == reference, engine


# ---------------------------------------------------------------------------
# Blame map: failures name the originating site


@pytest.mark.parametrize("engine", ENGINES)
def test_blame_construction_crawler(engine):
    """Low battery rejects the heavyweight Site; the blame names the
    bounded-snapshot site and the Site's construction (it was never
    tagged by an earlier snapshot)."""
    interp = _run(ROOT / "examples" / "ent" / "crawler.ent",
                  engine, "transient", battery=0.3)
    line = next(l for l in interp.output
                if l.startswith("EnergyException"))
    assert ("[transient: site snapshot_bound@56:18; "
            "blame construction]") in line
    full = _run(ROOT / "examples" / "ent" / "crawler.ent",
                engine, "full", battery=0.3)
    assert _normalize(interp.output) == full.output


@pytest.mark.parametrize("engine", ENGINES)
def test_blame_construction_sensors(engine):
    """At 0.3 battery the hourly sweep's snapshot fails *outside* any
    handler, so the blame surfaces on the escaping exception."""
    from repro.core.errors import EnergyException

    with pytest.raises(EnergyException) as transient_exc:
        _run(ROOT / "examples" / "ent" / "sensors.ent",
             engine, "transient", battery=0.3)
    message = str(transient_exc.value)
    assert ("[transient: site snapshot_bound@49:21; "
            "blame construction]") in message
    with pytest.raises(EnergyException) as full_exc:
        _run(ROOT / "examples" / "ent" / "sensors.ent",
             engine, "full", battery=0.3)
    assert BLAME_SUFFIX.sub("", message) == str(full_exc.value)


@pytest.mark.parametrize("engine", ENGINES)
def test_blame_dfall_names_tagging_snapshot(engine):
    """media.ent's waterfall violation: the dfall failure blames the
    snapshot that tagged the receiver, not the send site alone."""
    interp = _run(ROOT / "examples" / "ent" / "media.ent",
                  engine, "transient")
    line = next(l for l in interp.output if "waterfall" in l)
    assert ("[transient: site dfall@55:16; "
            "blame snapshot_bound@62:33]") in line


RESNAPSHOT = """modes { energy_saver <= managed; managed <= full_throttle; }
class R@mode<?X> {
    int load;
    attributor {
        if (load > 10) { return full_throttle; }
        return energy_saver;
    }
    R(int load) { this.load = load; }
}
class Main {
    void main() {
        R@mode<?> r = new R@mode<?>(50);
        R a = snapshot r [_, full_throttle];
        try {
            R b = snapshot r [_, managed];
        } catch (EnergyException e) {
            Sys.print("caught: " + e);
        }
    }
}
"""


@pytest.mark.parametrize("engine", ENGINES)
def test_blame_resnapshot_names_first_snapshot(engine):
    """A failing re-snapshot (shallow tag-vs-bounds probe) blames the
    snapshot that tagged the object, two lines earlier."""
    interp = run_source(RESNAPSHOT,
                        options=InterpOptions(engine=engine,
                                              checks="transient"))
    assert len(interp.output) == 1
    assert ("[transient: site snapshot_bound@15:19; "
            "blame snapshot_bound@13:15]") in interp.output[0]
    assert interp.stats.shallow_checks == 2
    full = run_source(RESNAPSHOT,
                      options=InterpOptions(engine=engine,
                                            checks="full"))
    assert _normalize(interp.output) == full.output
    assert full.stats.shallow_checks == 0


# ---------------------------------------------------------------------------
# Collapsing actually collapses: re-snapshot loops stop copying

HOT_RESNAPSHOT = """modes { energy_saver <= managed; managed <= full_throttle; }
class R@mode<?X> {
    int load;
    attributor {
        if (load > 100) { return full_throttle; }
        if (load > 10) { return managed; }
        return energy_saver;
    }
    R(int load) { this.load = load; }
    int get() { return load; }
}
class Main {
    void main() {
        R@mode<?> r = new R@mode<?>(50);
        int total = 0;
        int i = 0;
        while (i < 200) {
            R s = snapshot r [managed, full_throttle];
            total = total + s.get();
            i = i + 1;
        }
        Sys.print(total);
    }
}
"""


@pytest.mark.parametrize("engine", ENGINES)
def test_transient_resnapshot_loop_is_shallow(engine):
    transient = run_source(HOT_RESNAPSHOT,
                           options=InterpOptions(engine=engine,
                                                 checks="transient"))
    full = run_source(HOT_RESNAPSHOT,
                      options=InterpOptions(engine=engine,
                                            checks="full"))
    assert transient.output == full.output == ["10000"]
    # Same checks performed...
    assert transient.stats.bound_checks == full.stats.bound_checks == 200
    assert transient.stats.dfall_checks == full.stats.dfall_checks
    # ...but transient never re-runs the attributor or copies: one tag
    # probe per re-snapshot, one per residual dfall.
    assert transient.stats.copies == 0
    assert full.stats.copies >= 199
    assert transient.stats.shallow_checks == 400
