"""Elision-transparency tests for the repro.analysis planner.

Check elision is a pure optimization: a planned program run with
``elide_checks`` on must be bit-identical — outputs, every stats
counter (with executed+elided folded together), and raised
``EnergyException``s — to the same program with elision off, under
both execution engines.  The planner's soundness argument lives in
docs/ANALYSIS.md; these tests are its executable counterpart.
"""

import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import plan_elisions
from repro.core.errors import EnergyException, FuelExhausted
from repro.lang.interp import Interpreter, InterpOptions, NullPlatform
from repro.lang.typechecker import check_program

# Reuse the soundness generator: its programs cover snapshots, bounds,
# messaging, mode cases, loops and exception handlers.
from test_soundness import programs  # type: ignore

ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = sorted((ROOT / "examples" / "ent").glob("*.ent"))

#: Workload kernels from the benchmark suite (inlined: benchmarks/ is
#: not importable from tests): a message-heavy hot loop on a
#: concrete-mode receiver, and a snapshot-heavy kernel.
MODES = "modes { energy_saver <= managed; managed <= full_throttle; }\n"

HOT_LOOP_KERNEL = MODES + """
class Acc@mode<full_throttle> {
    int total;
    int bump(int k) { total = total + k; return total; }
}
class Main {
    void main() {
        Acc a = new Acc();
        int i = 0;
        while (i < 500) { a.bump(i % 7); i = i + 1; }
        Sys.print(a.total);
    }
}
"""

SNAPSHOT_KERNEL = MODES + """
class D@mode<?X> {
    int n;
    attributor {
        if (n > 3) { return full_throttle; }
        return managed;
    }
    D(int n) { this.n = n; }
    int work(int k) { return n + k; }
}
class Main {
    void main() {
        int total = 0;
        int i = 0;
        while (i < 50) {
            D d = snapshot (new D@mode<?>(i % 6));
            total = total + d.work(i);
            i = i + 1;
        }
        Sys.print(total);
    }
}
"""

KERNELS = {"hot_loop": HOT_LOOP_KERNEL, "snapshot": SNAPSHOT_KERNEL}


def run_config(source, *, compile_flag, elide, battery=0.6):
    """Run a planned program with elision on or off.

    The elision plan is applied in both configurations — only the
    ``elide_checks`` option differs, isolating the runtime skip.
    """

    class _Battery(NullPlatform):
        def battery_fraction(self):
            return battery

    checked = check_program(source)
    plan_elisions(checked)
    interp = Interpreter(
        checked, platform=_Battery(),
        options=InterpOptions(compile=compile_flag, fuel=500_000,
                              elide_checks=elide))
    try:
        interp.run()
        outcome = "ok"
    except EnergyException as exc:
        outcome = f"energy: {exc}"
    except FuelExhausted:
        outcome = "fuel"
    return outcome, tuple(interp.output), interp.stats.as_dict()


def fold_elided(stats):
    """Stats with executed and elided checks folded together — the
    only difference elision is allowed to make."""
    out = dict(stats)
    out["dfall_checks"] += out.pop("dfall_elided")
    out["bound_checks"] += out.pop("bound_checks_elided")
    return out


def assert_transparent(source, compile_flag):
    on = run_config(source, compile_flag=compile_flag, elide=True)
    off = run_config(source, compile_flag=compile_flag, elide=False)
    # Outcome (including EnergyException messages) and output match.
    assert on[0] == off[0]
    assert on[1] == off[1]
    # With elision off, nothing may be skipped.
    assert off[2]["dfall_elided"] == 0
    assert off[2]["bound_checks_elided"] == 0
    # Every other counter is untouched; elision only moves checks from
    # the executed column to the elided column.
    assert fold_elided(on[2]) == fold_elided(off[2])


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
@pytest.mark.parametrize("compile_flag", [False, True],
                         ids=["walk", "compiled"])
def test_examples_identical_with_and_without_elision(path, compile_flag):
    assert_transparent(path.read_text(), compile_flag)


@pytest.mark.parametrize("kernel", sorted(KERNELS), ids=str)
@pytest.mark.parametrize("compile_flag", [False, True],
                         ids=["walk", "compiled"])
def test_kernels_identical_with_and_without_elision(kernel, compile_flag):
    assert_transparent(KERNELS[kernel], compile_flag)


def test_kernels_actually_elide():
    # Guard against the suite passing vacuously: the kernels must have
    # checks the planner provably removes.
    for kernel in KERNELS.values():
        on = run_config(kernel, compile_flag=False, elide=True)
        assert on[2]["dfall_elided"] + on[2]["bound_checks_elided"] > 0


@settings(max_examples=30, deadline=None)
@given(programs(), st.booleans())
def test_random_programs_identical_with_and_without_elision(
        source, compile_flag):
    assert_transparent(source, compile_flag)


@settings(max_examples=20, deadline=None)
@given(programs())
def test_analyzer_never_crashes_on_generated_programs(source):
    from repro.analysis import analyze_program

    report = analyze_program(check_program(source))
    for site in report.sites:
        assert site.status in ("static", "elided", "residual")
