"""Differential testing: the closure-compiled engine must be
observationally identical to the tree walk on every program."""

import pytest
from hypothesis import given, settings

from repro.core.errors import EnergyException, FuelExhausted
from repro.lang.interp import Interpreter, InterpOptions
from repro.lang.typechecker import check_program

# Reuse the soundness generator: its programs cover snapshots, bounds,
# messaging, mode cases, loops and exception handlers.
from test_soundness import programs  # type: ignore

from repro.lang.interp import NullPlatform

import pathlib

_ROOT = pathlib.Path(__file__).resolve().parents[2]

#: Every shipped example program (the paper listing analogues exercise
#: the full feature surface); globbed so new examples are covered
#: automatically.
FIXED_PROGRAMS = sorted(
    str(p.relative_to(_ROOT))
    for p in (_ROOT / "examples" / "ent").glob("*.ent"))

_KERNEL_HEADER = """
modes { low <= mid; mid <= high; }

class Acc@mode<high> {
    int total;
    Acc() { total = 0; }
    int bump(int k) { total = total + k; return total; }
}

class Rank@mode<?X> {
    int links;
    attributor {
        if (links > 12) { return high; }
        if (links > 4) { return mid; }
        return low;
    }
    Rank(int links) { this.links = links; }
    mcase<int> iterations = mcase{ low: 2; mid: 5; high: 9; };
    int score(int seed) {
        int s = seed;
        int i = 0;
        while (i < iterations) { s = (s * 31 + links) % 1000; i = i + 1; }
        return s;
    }
}
"""

#: Workload-style kernels: the arithmetic/messaging shapes of the
#: Figure-7 workloads (accumulation loops, rank iteration with a
#: data-dependent mode, snapshot-driven degradation) as ENT programs.
KERNEL_PROGRAMS = [
    # accumulate: the hot-loop bench's shape, many messages to a
    # concretely-moded receiver.
    _KERNEL_HEADER + """
class Main {
    void main() {
        Acc a = new Acc();
        int i = 0;
        while (i < 400) { a.bump(i % 7); i = i + 1; }
        Sys.print(a.bump(0));
    }
}
""",
    # pagerank-ish: data-dependent attributor modes select different
    # iteration counts through an mcase field.
    _KERNEL_HEADER + """
class Main {
    void main() {
        int total = 0;
        int n = 0;
        while (n < 20) {
            Rank r = snapshot (new Rank(n));
            total = total + r.score(n);
            n = n + 1;
        }
        Sys.print(total);
    }
}
""",
    # crypto-ish: nested loops of modular arithmetic with casts and
    # list traffic.
    _KERNEL_HEADER + """
class Main {
    void main() {
        List blocks = [3, 5, 7, 11];
        int digest = 1;
        foreach (int b : blocks) {
            int round = 0;
            while (round < 16) {
                digest = (digest * (int) b + round) % 8191;
                round = round + 1;
            }
        }
        Sys.print(digest);
    }
}
""",
]


def run_engine(source: str, compile_flag: bool, battery: float = 0.6):
    class _Battery(NullPlatform):
        def battery_fraction(self):
            return battery

    checked = check_program(source)
    interp = Interpreter(checked, platform=_Battery(),
                         options=InterpOptions(compile=compile_flag,
                                               fuel=500_000))
    try:
        interp.run()
        outcome = "ok"
    except EnergyException:
        outcome = "energy"
    except FuelExhausted:
        outcome = "fuel"
    return (outcome, interp.output, interp.stats.snapshots,
            interp.stats.energy_exceptions, interp.stats.copies,
            interp.stats.mcase_elims)


@pytest.mark.parametrize("path", FIXED_PROGRAMS)
@pytest.mark.parametrize("battery", [0.9, 0.6, 0.3])
def test_listings_agree(path, battery):
    source = (_ROOT / path).read_text()
    assert run_engine(source, False, battery) == \
        run_engine(source, True, battery)


@pytest.mark.parametrize("index", range(len(KERNEL_PROGRAMS)),
                         ids=["accumulate", "pagerank", "crypto"])
@pytest.mark.parametrize("battery", [0.9, 0.3])
def test_workload_kernels_agree(index, battery):
    source = KERNEL_PROGRAMS[index]
    walked = run_engine(source, False, battery)
    compiled = run_engine(source, True, battery)
    assert walked == compiled
    assert walked[1], "kernel should print a digest"


@settings(max_examples=40, deadline=None)
@given(programs())
def test_random_programs_agree(source):
    walked = run_engine(source, False)
    compiled = run_engine(source, True)
    # Step counts differ by design (fuel is charged per statement when
    # compiled); everything observable must match.
    assert walked == compiled
