"""Differential testing: the closure-compiled engine must be
observationally identical to the tree walk on every program."""

import pytest
from hypothesis import given, settings

from repro.core.errors import EnergyException, FuelExhausted
from repro.lang.interp import Interpreter, InterpOptions
from repro.lang.typechecker import check_program

# Reuse the soundness generator: its programs cover snapshots, bounds,
# messaging, mode cases, loops and exception handlers.
from test_soundness import programs  # type: ignore

from repro.lang.interp import NullPlatform

FIXED_PROGRAMS = [
    # Paper listing analogues exercise the full feature surface.
    "examples/ent/crawler.ent",
    "examples/ent/coadapt.ent",
    "examples/ent/media.ent",
]


def run_engine(source: str, compile_flag: bool, battery: float = 0.6):
    class _Battery(NullPlatform):
        def battery_fraction(self):
            return battery

    checked = check_program(source)
    interp = Interpreter(checked, platform=_Battery(),
                         options=InterpOptions(compile=compile_flag,
                                               fuel=500_000))
    try:
        interp.run()
        outcome = "ok"
    except EnergyException:
        outcome = "energy"
    except FuelExhausted:
        outcome = "fuel"
    return (outcome, interp.output, interp.stats.snapshots,
            interp.stats.energy_exceptions, interp.stats.copies,
            interp.stats.mcase_elims)


@pytest.mark.parametrize("path", FIXED_PROGRAMS)
@pytest.mark.parametrize("battery", [0.9, 0.6, 0.3])
def test_listings_agree(path, battery):
    import pathlib
    root = pathlib.Path(__file__).resolve().parents[2]
    source = (root / path).read_text()
    assert run_engine(source, False, battery) == \
        run_engine(source, True, battery)


@settings(max_examples=40, deadline=None)
@given(programs())
def test_random_programs_agree(source):
    walked = run_engine(source, False)
    compiled = run_engine(source, True)
    # Step counts differ by design (fuel is charged per statement when
    # compiled); everything observable must match.
    assert walked == compiled
