"""End-to-end guarantees of ``repro advise`` (docs/ADVISE.md):

* **Determinism** — the full JSON result is bit-identical across
  ``--jobs`` values and repeated runs for a fixed seed; worker
  completion order must never leak into scores or frontier order.
* **Observation-only** — advising a program changes nothing about how
  that program runs: every ``InterpStats`` counter (steps, checks,
  copies, exceptions) is bit-identical before and after a sweep,
  because candidates are realized as fresh parses of fresh sources.
* **Frontier shape** — both worked examples yield at least three
  non-dominated assignments, including the all-dynamic baseline at
  risk 0 (the paper's trade-off is real, not degenerate).
* **Interval honesty** — replaying each frontier assignment on
  held-out platform seeds lands inside the reported 99% confidence
  interval at least 90% of the time.
"""

import pathlib

import pytest

from repro.advise import (VALIDATE_STREAM, AdviseConfig, advise_file,
                          advise_source, measure_assignment)
from repro.core.rng import derive_seed
from repro.lang.interp import Interpreter, InterpOptions
from repro.lang.typechecker import check_program
from repro.platform.systems import make_platform

ROOT = pathlib.Path(__file__).resolve().parents[2]
CRAWLER = ROOT / "examples" / "ent" / "crawler.ent"
SENSORS = ROOT / "examples" / "ent" / "sensors.ent"

#: Small-but-real sweep parameters: full candidate space, two paired
#: calibration runs, enough MC draws to be meaningful.
FAST = dict(runs=2, samples=64)


def _advise(path, jobs=1, seed=0, **overrides):
    params = dict(FAST)
    params.update(overrides)
    return advise_file(str(path),
                       config=AdviseConfig(jobs=jobs, seed=seed,
                                           **params))


# ---------------------------------------------------------------------------
# Determinism


@pytest.mark.parametrize("path", [CRAWLER, SENSORS],
                         ids=lambda p: p.stem)
def test_jobs_invariance(path):
    serial = _advise(path, jobs=1).to_json()
    parallel = _advise(path, jobs=4).to_json()
    assert serial == parallel


def test_repeat_determinism():
    first = _advise(CRAWLER, jobs=2).to_json()
    second = _advise(CRAWLER, jobs=2).to_json()
    assert first == second


def test_battery_grid_determinism():
    grid = dict(batteries=(1.0, 0.45), runs=1, samples=32)
    serial = _advise(SENSORS, jobs=1, **grid).to_json()
    parallel = _advise(SENSORS, jobs=3, **grid).to_json()
    assert serial == parallel


# ---------------------------------------------------------------------------
# Observation-only


def _run_stats(source: str) -> dict:
    checked = check_program(source)
    from repro.analysis import plan_elisions
    plan_elisions(checked)
    platform = make_platform("A", seed=0)
    interp = Interpreter(checked, platform=platform,
                         options=InterpOptions(engine="walk"), seed=0)
    interp.run([])
    stats = interp.stats.as_dict()
    stats["energy_j"] = platform.energy_total_j()
    return stats


def test_advising_is_observation_only():
    source = CRAWLER.read_text()
    before = _run_stats(source)
    advise_source(source, file=str(CRAWLER),
                  config=AdviseConfig(runs=1, samples=16))
    after = _run_stats(source)
    assert before == after  # every counter, bit for bit


# ---------------------------------------------------------------------------
# Frontier shape


@pytest.mark.parametrize("path", [CRAWLER, SENSORS],
                         ids=lambda p: p.stem)
def test_frontier_has_at_least_three_points(path):
    result = _advise(path, jobs=4)
    assert len(result.frontier) >= 3
    names = [c.name for c in result.frontier]
    assert len(set(names)) == len(names)
    # The all-dynamic baseline is always non-dominated: it is the only
    # assignment with zero pins, hence zero violation risk.
    baseline = [c for c in result.frontier
                if all(m is None for m in c.assignment.values())]
    assert len(baseline) == 1
    assert baseline[0].risk == 0.0
    # Frontier energies are strictly increasing while risks strictly
    # decrease (the definition of a frontier, post-sort).
    energies = [c.energy.mean for c in result.frontier]
    risks = [c.risk for c in result.frontier]
    assert energies == sorted(energies)
    assert risks == sorted(risks, reverse=True)


def test_frontier_members_are_mutually_nondominated():
    from repro.advise import dominates

    result = _advise(CRAWLER, jobs=4)
    for a in result.frontier:
        for b in result.frontier:
            if a is not b:
                assert not dominates(a, b)


# ---------------------------------------------------------------------------
# Interval honesty (the >= 90% acceptance bar)


@pytest.mark.parametrize("path", [CRAWLER, SENSORS],
                         ids=lambda p: p.stem)
def test_frontier_cis_cover_heldout_runs(path):
    config = AdviseConfig(runs=3, samples=64, jobs=4)
    result = advise_file(str(path), config=config)
    source = path.read_text()
    assert len(result.frontier) >= 3
    for cand in result.frontier:
        lo, hi = cand.energy.ci()
        inside = 0
        trials = 10
        for i in range(trials):
            seed = derive_seed(config.seed, VALIDATE_STREAM, i)
            measured = measure_assignment(source, cand.assignment,
                                          config, seed,
                                          file=str(path))
            if lo <= measured["energy_j"] <= hi:
                inside += 1
        assert inside >= 0.9 * trials, (cand.name, inside, lo, hi)
