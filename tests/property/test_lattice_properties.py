"""Property-based tests over mode lattices and constraint entailment."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import ConstraintSet
from repro.core.modes import BOTTOM, TOP, Mode, ModeLattice

_names = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=6),
    min_size=1, max_size=6, unique=True)


@st.composite
def linear_lattices(draw):
    return ModeLattice.linear(draw(_names))


@st.composite
def lattice_and_modes(draw, count=2):
    lattice = draw(linear_lattices())
    modes = sorted(lattice.modes, key=lambda m: m.name)
    picks = [draw(st.sampled_from(modes)) for _ in range(count)]
    return (lattice, *picks)


class TestPartialOrder:
    @given(lattice_and_modes(1))
    def test_reflexive(self, data):
        lattice, a = data
        assert lattice.leq(a, a)

    @given(lattice_and_modes(2))
    def test_antisymmetric(self, data):
        lattice, a, b = data
        if lattice.leq(a, b) and lattice.leq(b, a):
            assert a == b

    @given(lattice_and_modes(3))
    def test_transitive(self, data):
        lattice, a, b, c = data
        if lattice.leq(a, b) and lattice.leq(b, c):
            assert lattice.leq(a, c)

    @given(lattice_and_modes(1))
    def test_bounded(self, data):
        lattice, a = data
        assert lattice.leq(BOTTOM, a)
        assert lattice.leq(a, TOP)


class TestLatticeLaws:
    @given(lattice_and_modes(2))
    def test_join_is_upper_bound(self, data):
        lattice, a, b = data
        join = lattice.join(a, b)
        assert lattice.leq(a, join) and lattice.leq(b, join)

    @given(lattice_and_modes(2))
    def test_meet_is_lower_bound(self, data):
        lattice, a, b = data
        meet = lattice.meet(a, b)
        assert lattice.leq(meet, a) and lattice.leq(meet, b)

    @given(lattice_and_modes(2))
    def test_join_commutative(self, data):
        lattice, a, b = data
        assert lattice.join(a, b) == lattice.join(b, a)

    @given(lattice_and_modes(2))
    def test_meet_commutative(self, data):
        lattice, a, b = data
        assert lattice.meet(a, b) == lattice.meet(b, a)

    @given(lattice_and_modes(3))
    def test_join_associative(self, data):
        lattice, a, b, c = data
        assert lattice.join(lattice.join(a, b), c) == \
            lattice.join(a, lattice.join(b, c))

    @given(lattice_and_modes(2))
    def test_absorption(self, data):
        lattice, a, b = data
        assert lattice.join(a, lattice.meet(a, b)) == a
        assert lattice.meet(a, lattice.join(a, b)) == a

    @given(lattice_and_modes(2))
    def test_join_least(self, data):
        lattice, a, b = data
        join = lattice.join(a, b)
        for upper in lattice.modes:
            if lattice.leq(a, upper) and lattice.leq(b, upper):
                assert lattice.leq(join, upper)

    @given(linear_lattices())
    def test_chain_respects_order(self, lattice):
        ordered = lattice.chain()
        for i, earlier in enumerate(ordered):
            for later in ordered[i + 1:]:
                assert not lattice.lt(later, earlier)


_vars = st.sampled_from(["V1", "V2", "V3"])


@st.composite
def constraint_sets(draw):
    lattice = draw(linear_lattices())
    modes = sorted(lattice.modes, key=lambda m: m.name)
    atom = st.one_of(st.sampled_from(modes), _vars)
    pairs = draw(st.lists(st.tuples(atom, atom), max_size=6))
    return ConstraintSet(lattice, pairs)


@st.composite
def constraints_and_atoms(draw, count=2):
    constraints = draw(constraint_sets())
    modes = sorted(constraints.lattice.modes, key=lambda m: m.name)
    atom = st.one_of(st.sampled_from(modes), _vars)
    picks = [draw(atom) for _ in range(count)]
    return (constraints, *picks)


class TestEntailmentProperties:
    @given(constraints_and_atoms(1))
    def test_reflexive(self, data):
        constraints, a = data
        assert constraints.entails_one(a, a)

    @given(constraints_and_atoms(3))
    @settings(max_examples=60)
    def test_transitive(self, data):
        constraints, a, b, c = data
        if (constraints.entails_one(a, b)
                and constraints.entails_one(b, c)):
            assert constraints.entails_one(a, c)

    @given(constraints_and_atoms(2))
    def test_declared_constraints_entailed(self, data):
        constraints, _, _ = data
        for lhs, rhs in constraints:
            assert constraints.entails_one(lhs, rhs)

    @given(constraints_and_atoms(2))
    def test_extension_monotone(self, data):
        constraints, a, b = data
        if constraints.entails_one(a, b):
            extended = constraints.extend([(BOTTOM, "V9")])
            assert extended.entails_one(a, b)

    @given(constraint_sets())
    def test_entails_self(self, constraints):
        assert constraints.entails(constraints)

    @given(constraints_and_atoms(2))
    @settings(max_examples=60)
    def test_ground_entailment_matches_lattice(self, data):
        constraints, a, b = data
        if isinstance(a, Mode) and isinstance(b, Mode):
            empty = ConstraintSet(constraints.lattice)
            assert empty.entails_one(a, b) == \
                constraints.lattice.leq(a, b)
