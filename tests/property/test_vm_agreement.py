"""Cross-engine differential testing for the register-bytecode VM.

All four execution engines — tree walk, closure compiler, VM, and the
VM's trace-JIT tier — must be observationally identical on every
program: same output lines, same stats (minus ``steps``, which is
engine-defined), same exceptions with the same messages, with check
elision and inline caches toggled both ways.  This is the acceptance
gate for ``docs/VM.md``'s claim that the engines differ only in speed.

The ``jit`` engine runs twice over the fixed corpora: once with the
shipped hotness thresholds (tier-transition coverage — some bodies
compile mid-run, some never do) and once through the aggressive
``jit_hot`` runs below, where thresholds drop to 1 so essentially every
body executes as emitted Python.
"""

import pathlib

import pytest
from hypothesis import given, settings

from repro.analysis import plan_elisions
from repro.core.errors import (EnergyException, EntRuntimeError,
                               FuelExhausted)
from repro.lang.interp import Interpreter, InterpOptions, NullPlatform
from repro.lang.typechecker import check_program

# Reuse the soundness generator: its programs cover snapshots, bounds,
# messaging, mode cases, loops and exception handlers.
from test_soundness import programs  # type: ignore

# And the compiler-agreement kernels, so all engines chew on the same
# workload shapes.
from test_compiler_agreement import KERNEL_PROGRAMS  # type: ignore

_ROOT = pathlib.Path(__file__).resolve().parents[2]

#: Every shipped ENT example program, globbed so new ones are covered.
FIXED_PROGRAMS = sorted(
    str(p.relative_to(_ROOT))
    for p in (_ROOT / "examples" / "ent").glob("*.ent"))

ENGINES = ("walk", "compiled", "vm", "jit")


def run_engine(source: str, engine: str, battery: float = 0.6,
               elide: bool = False, inline_caches: bool = True,
               jit_hot: bool = False):
    """One run; returns everything observable: the outcome (with the
    exception's message — errors must match byte for byte), the output
    lines, and the stats dict minus ``steps``.  ``jit_hot`` drops the
    JIT's hotness thresholds to 1 so every body compiles immediately.
    """

    class _Battery(NullPlatform):
        def battery_fraction(self):
            return battery

    checked = check_program(source)
    if elide:
        plan_elisions(checked)
    interp = Interpreter(
        checked, platform=_Battery(),
        options=InterpOptions(engine=engine, fuel=500_000,
                              inline_caches=inline_caches))
    if jit_hot and engine == "jit":
        interp._vm._hot_call = 1
        interp._vm._hot_loop = 1
    try:
        interp.run()
        outcome = ("ok", None)
    except EnergyException as exc:
        outcome = ("energy", str(exc))
    except FuelExhausted:
        outcome = ("fuel", None)
    except EntRuntimeError as exc:
        outcome = ("error", type(exc).__name__, str(exc))
    stats = interp.stats.as_dict()
    del stats["steps"]  # engine-defined (documented in docs/VM.md)
    return outcome, tuple(interp.output), stats


@pytest.mark.parametrize("path", FIXED_PROGRAMS)
@pytest.mark.parametrize("elide", [False, True], ids=["checks", "elide"])
@pytest.mark.parametrize("inline_caches", [True, False],
                         ids=["ic", "noic"])
def test_examples_agree(path, elide, inline_caches):
    source = (_ROOT / path).read_text()
    results = [run_engine(source, engine, elide=elide,
                          inline_caches=inline_caches)
               for engine in ENGINES]
    results.append(run_engine(source, "jit", elide=elide,
                              inline_caches=inline_caches,
                              jit_hot=True))
    for got in results[1:]:
        assert got == results[0]


@pytest.mark.parametrize("index", range(len(KERNEL_PROGRAMS)),
                         ids=["accumulate", "pagerank", "crypto"])
@pytest.mark.parametrize("battery", [0.9, 0.3])
@pytest.mark.parametrize("elide", [False, True], ids=["checks", "elide"])
def test_workload_kernels_agree(index, battery, elide):
    source = KERNEL_PROGRAMS[index]
    results = [run_engine(source, engine, battery=battery, elide=elide)
               for engine in ENGINES]
    results.append(run_engine(source, "jit", battery=battery,
                              elide=elide, jit_hot=True))
    for got in results[1:]:
        assert got == results[0]
    assert results[0][1], "kernel should print a digest"


@pytest.mark.parametrize("index", [0, 1],
                         ids=["accumulate", "pagerank"])
def test_check_counts_invariant_under_elision(index):
    """The paper's check accounting: executed + elided is the same
    number whether or not the planner ran, on every engine."""
    source = KERNEL_PROGRAMS[index]
    totals = set()
    for engine in ENGINES:
        for elide in (False, True):
            _, _, stats = run_engine(source, engine, elide=elide)
            totals.add((stats["dfall_checks"] + stats["dfall_elided"],
                        stats["bound_checks"]
                        + stats["bound_checks_elided"]))
    assert len(totals) == 1, totals


@settings(max_examples=30, deadline=None)
@given(programs())
def test_random_programs_agree(source):
    walked = run_engine(source, "walk")
    vm = run_engine(source, "vm")
    assert walked == vm


@settings(max_examples=25, deadline=None)
@given(programs())
def test_random_programs_agree_jit(source):
    """The JIT with thresholds at 1 — every body runs as emitted
    Python — against the reference walk."""
    walked = run_engine(source, "walk")
    jit = run_engine(source, "jit", jit_hot=True)
    assert walked == jit


@settings(max_examples=15, deadline=None)
@given(programs())
def test_random_programs_agree_noic(source):
    """Inline caches off must not change VM observables either."""
    walked = run_engine(source, "walk")
    vm = run_engine(source, "vm", inline_caches=False)
    assert walked == vm
    jit = run_engine(source, "jit", inline_caches=False, jit_hot=True)
    assert walked == jit
