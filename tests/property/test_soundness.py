"""Property-based type-soundness tests (paper Theorem 1, Corollary 1).

A generator produces random ENT programs from well-typed-by-construction
building blocks: dynamic objects with data-dependent attributors,
bounded and unbounded snapshots (with and without handlers), messaging,
mode-case elimination, and loops.  Every generated program must
typecheck, and every run must either produce a value, exhaust its fuel
(divergence), or stop at an EnergyException from a bad check — never a
stuck state (``StuckError``).  An ``on_message`` hook asserts the
dynamic waterfall invariant on every message (Corollary 1).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import (EnergyException, EntError, FuelExhausted,
                               StuckError)
from repro.lang.interp import Interpreter, InterpOptions
from repro.lang.typechecker import check_program

HEADER = """
modes { energy_saver <= managed; managed <= full_throttle; }

class D@mode<?X> {
    int n;
    attributor {
        if (n > 20) { return full_throttle; }
        if (n > 10) { return managed; }
        return energy_saver;
    }
    D(int n) { this.n = n; }
    mcase<int> level = mcase{
        energy_saver: 1; managed: 2; full_throttle: 3;
    };
    int work(int k) { return n + k; }
    int grow() { n = n + 7; return n; }
}
"""

MODE_NAMES = ["energy_saver", "managed", "full_throttle"]

_bounds = st.one_of(
    st.none(),
    st.tuples(st.sampled_from(["_"] + MODE_NAMES),
              st.sampled_from(["_"] + MODE_NAMES)))


@st.composite
def programs(draw):
    """Emit a random Main over the fixed class library."""
    lines = []
    dyn_vars = []
    snap_vars = []
    var_count = 0

    def fresh():
        nonlocal var_count
        var_count += 1
        return f"v{var_count}"

    n_ops = draw(st.integers(min_value=1, max_value=12))
    lines.append("int acc = 0;")
    for _ in range(n_ops):
        choice = draw(st.integers(min_value=0, max_value=5))
        if choice == 0 or not dyn_vars:
            name = fresh()
            size = draw(st.integers(min_value=0, max_value=30))
            lines.append(f"D {name} = new D({size});")
            dyn_vars.append(name)
        elif choice == 1:
            src = draw(st.sampled_from(dyn_vars))
            name = fresh()
            bounds = draw(_bounds)
            snap = f"snapshot {src}"
            if bounds is not None:
                snap += f" [{bounds[0]}, {bounds[1]}]"
            guarded = draw(st.booleans())
            if guarded:
                # The snapshot result is scoped inside the handler-
                # protected block (non-equivocation: it cannot flow to
                # a dynamic-typed variable outside).
                lines.append(f"try {{ D {name} = {snap}; "
                             f"acc = acc + {name}.work(1); }} "
                             f"catch (EnergyException e) "
                             f"{{ acc = acc + 1; }}")
            else:
                lines.append(f"D {name} = {snap};")
                snap_vars.append(name)
        elif choice == 2 and snap_vars:
            target = draw(st.sampled_from(snap_vars))
            k = draw(st.integers(min_value=0, max_value=5))
            lines.append(f"acc = acc + {target}.work({k});")
        elif choice == 3 and snap_vars:
            target = draw(st.sampled_from(snap_vars))
            lines.append(f"acc = acc + {target}.level;")
        elif choice == 4 and dyn_vars:
            target = draw(st.sampled_from(dyn_vars))
            mode = draw(st.sampled_from(MODE_NAMES))
            lines.append(f"acc = acc + mselect({target}.level, {mode});")
        else:
            reps = draw(st.integers(min_value=0, max_value=4))
            lines.append(f"int i{var_count} = 0;")
            lines.append(f"while (i{var_count} < {reps}) "
                         f"{{ acc = acc + 1; "
                         f"i{var_count} = i{var_count} + 1; }}")
            var_count += 1
    body = "\n        ".join(lines)
    return (HEADER
            + "class Main { void main() { "
            + body + " Sys.print(acc); } }")


@settings(max_examples=60, deadline=None)
@given(programs())
def test_soundness_never_stuck(source):
    """Theorem 1: well-typed programs reduce to a value, diverge, or
    stop at a bad check — they never get stuck."""
    checked = check_program(source)  # must typecheck
    interp = Interpreter(checked, options=InterpOptions(fuel=200_000))
    try:
        interp.run()
    except (EnergyException, FuelExhausted):
        pass  # bad check or bounded divergence: allowed by soundness
    except StuckError as exc:  # pragma: no cover - a real bug
        raise AssertionError(f"stuck state reached: {exc}\n{source}")


@settings(max_examples=40, deadline=None)
@given(programs())
def test_waterfall_invariant_preservation(source):
    """Corollary 1: dfall holds at every message of a well-typed run."""
    checked = check_program(source)
    interp = Interpreter(checked, options=InterpOptions(fuel=200_000))
    violations = []
    interp.on_message = (
        lambda guard, sender, holds:
        violations.append((guard, sender)) if not holds else None)
    try:
        interp.run()
    except (EnergyException, FuelExhausted):
        pass
    assert not violations, (violations, source)


@settings(max_examples=30, deadline=None)
@given(programs())
def test_silent_mode_never_raises(source):
    """The E1 silent build ignores every EnergyException."""
    checked = check_program(source)
    interp = Interpreter(checked,
                         options=InterpOptions(silent=True, fuel=200_000))
    try:
        interp.run()
    except FuelExhausted:
        pass


@settings(max_examples=30, deadline=None)
@given(programs())
def test_lazy_and_eager_copy_agree(source):
    """The lazy-copy optimization (section 5) is unobservable: lazy and
    eager snapshots produce identical program output."""
    def run(lazy):
        checked = check_program(source)
        interp = Interpreter(
            checked, options=InterpOptions(lazy_copy=lazy, fuel=200_000))
        try:
            interp.run()
        except (EnergyException, FuelExhausted) as exc:
            return ("exception", type(exc).__name__, interp.output)
        return ("ok", None, interp.output)

    assert run(True) == run(False)
