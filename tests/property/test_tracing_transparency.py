"""Tracing is observation-only: attaching a tracer never changes a run.

Every episode runner threads a tracer through the runtime, the platform
simulator, and the meters.  These properties re-run the same episode
with the shared ``NULL_TRACER`` (the default) and with a live
:class:`~repro.obs.tracer.Tracer` and require bit-identical results —
energy, duration, control flow, and QoS decisions.  Any divergence
would mean instrumentation leaked into the semantics (e.g. by
advancing the simulation clock or consuming platform randomness).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.runner import (run_e1_episode, run_e2_episode,
                               run_e3_episode)
from repro.obs.tracer import Tracer
from repro.workloads import E3_BENCHMARKS, get_workload
from repro.workloads.base import ES, FT, MG

_MODES = [ES, MG, FT]
_E1_E2_BENCHMARKS = ["jspider", "sunflow", "crypto"]

_seed = st.integers(min_value=0, max_value=7)
_mode = st.sampled_from(_MODES)
_bench = st.sampled_from(_E1_E2_BENCHMARKS)


def _episode_key(result):
    return (result.benchmark, result.system, result.boot_mode,
            result.workload_mode, result.qos_mode, result.silent,
            result.energy_j, result.duration_s, result.exception_raised)


class TestTracingTransparency:
    @given(_bench, _mode, _mode, st.booleans(), _seed)
    @settings(max_examples=25, deadline=None)
    def test_e1_unchanged_by_tracer(self, bench, boot, workload_mode,
                                    silent, seed):
        workload = get_workload(bench)
        plain = run_e1_episode(workload, "A", boot, workload_mode,
                               silent=silent, seed=seed)
        traced = run_e1_episode(workload, "A", boot, workload_mode,
                                silent=silent, seed=seed, tracer=Tracer())
        assert _episode_key(plain) == _episode_key(traced)

    @given(_bench, _mode, _seed)
    @settings(max_examples=15, deadline=None)
    def test_e2_unchanged_by_tracer(self, bench, boot, seed):
        workload = get_workload(bench)
        plain = run_e2_episode(workload, "A", boot, seed=seed)
        traced = run_e2_episode(workload, "A", boot, seed=seed,
                                tracer=Tracer())
        assert _episode_key(plain) == _episode_key(traced)

    @given(st.sampled_from(E3_BENCHMARKS),
           st.sampled_from(["ent", "java"]), _seed)
    @settings(max_examples=10, deadline=None)
    def test_e3_unchanged_by_tracer(self, bench, variant, seed):
        workload = get_workload(bench)
        plain = run_e3_episode(workload, variant=variant, seed=seed,
                               units=4)
        traced = run_e3_episode(workload, variant=variant, seed=seed,
                                units=4, tracer=Tracer())
        assert plain.energy_j == traced.energy_j
        assert plain.duration_s == traced.duration_s
        assert plain.sleeps == traced.sleeps
        assert plain.trace == traced.trace

    def test_e1_trace_records_the_decision(self):
        """The trace of a violating run shows the exception path."""
        tracer = Tracer()
        result = run_e1_episode(get_workload("jspider"), "A", ES, FT,
                                seed=0, tracer=tracer)
        assert result.exception_raised
        kinds = {event.kind for event in tracer.events()}
        assert "energy_exception" in kinds
        assert "snapshot" in kinds
        assert "meter_sample" in kinds
