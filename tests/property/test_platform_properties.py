"""Property-based tests over the platform models."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.platform import Battery, SystemA, ThermalModel
from repro.platform.cpu import INTEL_I5, OndemandGovernor

_power = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
_duration = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)


class TestThermalProperties:
    @given(_power, _duration)
    def test_bounded_by_ambient_and_steady(self, power, duration):
        model = ThermalModel(ambient_c=35.0)
        model.step(power, duration)
        lo = min(35.0, model.steady_state(power))
        hi = max(35.0, model.steady_state(power))
        assert lo - 1e-6 <= model.temperature_c <= hi + 1e-6

    @given(_power, _duration, _duration)
    def test_split_step_equals_single_step(self, power, d1, d2):
        a = ThermalModel()
        b = ThermalModel()
        a.step(power, d1 + d2)
        b.step(power, d1)
        b.step(power, d2)
        assert math.isclose(a.temperature_c, b.temperature_c,
                            rel_tol=1e-9, abs_tol=1e-9)

    @given(_power, _power, _duration)
    def test_monotone_in_power(self, p1, p2, duration):
        assume(duration > 0)
        lo, hi = sorted((p1, p2))
        a = ThermalModel()
        b = ThermalModel()
        a.step(lo, duration)
        b.step(hi, duration)
        assert a.temperature_c <= b.temperature_c + 1e-9

    @given(_power, _duration)
    def test_approaches_steady_monotonically(self, power, duration):
        assume(duration > 0)
        model = ThermalModel()
        target = model.steady_state(power)
        before = abs(model.temperature_c - target)
        model.step(power, duration)
        after = abs(model.temperature_c - target)
        assert after <= before + 1e-9


class TestBatteryProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), max_size=20))
    def test_drain_monotone_and_bounded(self, drains):
        battery = Battery(1000.0)
        previous = battery.fraction()
        for amount in drains:
            battery.drain(amount)
            current = battery.fraction()
            assert 0.0 <= current <= previous
            previous = current

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_set_fraction_roundtrip(self, fraction):
        battery = Battery(500.0)
        battery.set_fraction(fraction)
        assert math.isclose(battery.fraction(), fraction, abs_tol=1e-12)


class TestGovernorProperties:
    @given(st.lists(st.tuples(st.booleans(),
                              st.floats(min_value=0.01, max_value=5.0,
                                        allow_nan=False)),
                    max_size=30))
    def test_utilization_stays_in_unit_interval(self, events):
        governor = OndemandGovernor(levels=4)
        for busy, duration in events:
            governor.observe(busy, duration)
            assert 0.0 <= governor.utilization <= 1.0
            assert 0 <= governor.select_level() <= 3

    @given(st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
    def test_sustained_busy_reaches_top(self, duration):
        governor = OndemandGovernor(levels=4)
        for _ in range(20):
            governor.observe(True, duration)
        assert governor.select_level() == 3

    @given(st.floats(min_value=0.5, max_value=10.0, allow_nan=False))
    def test_sustained_idle_reaches_bottom(self, duration):
        governor = OndemandGovernor(levels=4)
        governor.observe(True, 5.0)
        for _ in range(30):
            governor.observe(False, duration)
        assert governor.select_level() == 0


class TestPlatformInvariants:
    @given(st.lists(st.sampled_from(["work", "io", "net", "sleep"]),
                    min_size=1, max_size=25),
           st.integers(min_value=0, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_energy_time_battery_consistent(self, actions, seed):
        platform = SystemA(seed=seed)
        start_charge = platform.battery.charge_joules
        for action in actions:
            if action == "work":
                platform.cpu_work(500.0)
            elif action == "io":
                platform.io_bytes(1.0e5)
            elif action == "net":
                platform.net_bytes(1.0e5)
            else:
                platform.sleep(0.05)
        # Time moves forward; energy is non-negative; the battery
        # drained by exactly the ledger total.
        assert platform.now() > 0
        assert platform.energy_total_j() >= 0
        drained = start_charge - platform.battery.charge_joules
        assert math.isclose(drained, platform.energy_total_j(),
                            rel_tol=1e-6)

    @given(st.integers(min_value=0, max_value=50))
    def test_cpu_work_energy_scales_linearly_at_fixed_level(self, seed):
        a = SystemA(seed=seed, governor="performance")
        b = SystemA(seed=seed, governor="performance")
        a.cpu_work(1000.0)
        b.cpu_work(2000.0)
        assert math.isclose(b.ledger.cpu_j, 2 * a.ledger.cpu_j,
                            rel_tol=1e-6)

    def test_idle_power_below_busy_power(self):
        for level in range(INTEL_I5.levels):
            assert INTEL_I5.idle_power(level) < INTEL_I5.busy_power(level)

    def test_idle_power_monotone_in_level(self):
        idles = [INTEL_I5.idle_power(level)
                 for level in range(INTEL_I5.levels)]
        assert idles == sorted(idles)
