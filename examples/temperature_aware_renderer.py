#!/usr/bin/env python3
"""Temperature-aware rendering (the paper's E3 scenario, Figure 11).

A renderer processes buckets of a large scene on the simulated Intel
laptop.  Between buckets it snapshots a dedicated ``Sleeper`` object
whose attributor reads the CPU temperature; a mode case maps the
thermal mode to a cool-down interval (0 ms when safe, 250 ms when hot,
1000 ms when overheating).  Compare the temperature trace against the
same workload without the sleeps: plain rendering climbs towards the
thermal steady state, the ENT version duty-cycles around the threshold.

Run:  python examples/temperature_aware_renderer.py
"""

from repro.platform import SystemA
from repro.runtime import EntRuntime
from repro.workloads import FT, get_workload


def render_run(temperature_aware: bool, buckets: int = 45):
    platform = SystemA(seed=7)
    rt = EntRuntime.thermal(platform)
    sunflow = get_workload("sunflow")

    @rt.dynamic
    class Sleeper:
        """The dedicated Sleep object regulating CPU cool-down."""

        interval_ms = rt.mcase({"overheating": 1000.0, "hot": 250.0,
                                "safe": 0.0})

        def attributor(self):
            celsius = rt.ext.temperature()
            if celsius < 60.0:
                return "safe"
            if celsius <= 65.0:
                return "hot"
            return "overheating"

    sleeper = Sleeper()
    meter = platform.meter()
    meter.begin()
    for bucket in range(buckets):
        sunflow.execute_unit(platform, sunflow.qos_value(FT), seed=bucket)
        if temperature_aware:
            snapped = rt.snapshot(sleeper)
            interval = snapped.interval_ms
            if interval > 0:
                platform.sleep(interval / 1000.0)
    return platform, meter.end()


def sparkline(trace, width=60, lo=35.0, hi=75.0):
    glyphs = " .:-=+*#%@"
    samples = []
    duration = trace[-1][0] or 1.0
    for i in range(width):
        target = duration * i / (width - 1)
        nearest = min(trace, key=lambda p: abs(p[0] - target))
        samples.append(nearest[1])
    return "".join(
        glyphs[int(max(0.0, min(1.0, (t - lo) / (hi - lo)))
                   * (len(glyphs) - 1))]
        for t in samples)


def main() -> None:
    for aware, label in ((True, "ENT (temperature-cased sleeps)"),
                         (False, "plain (no thermal management)")):
        platform, energy = render_run(aware)
        temps = [t for _, t in platform.temperature_trace]
        print(f"{label}:")
        print(f"  |{sparkline(platform.temperature_trace)}|  (35-75C)")
        print(f"  peak {max(temps):.1f}C, final "
              f"{platform.cpu_temperature():.1f}C, "
              f"energy {energy:.0f} J over {platform.now():.0f} s")
        print()


if __name__ == "__main__":
    main()
