#!/usr/bin/env python3
"""Adaptive execution across a full battery discharge.

Listing 1's crawler snapshots its Agent on every loop iteration, so the
boot mode tracks the battery as it drains: full_throttle while charged,
managed past 75%, energy_saver past 50% — each step's QoS selected by a
mode case eliminated on the fresh snapshot.  This example runs that
pattern to (nearly) empty and prints the mode trajectory.

Run:  python examples/battery_drain.py
"""

from repro.eval import battery_drain_run

_GLYPH = {"full_throttle": "F", "managed": "m", "energy_saver": "."}


def main() -> None:
    run = battery_drain_run("jspider", "A", iterations=60,
                            battery_scale=0.003)
    print(f"adaptive crawl on System A, {len(run.steps)} iterations "
          f"(battery scaled for a short demo)\n")
    print("mode per iteration  (F=full_throttle m=managed "
          ".=energy_saver):")
    print("  " + "".join(_GLYPH[m] for m in run.mode_trajectory))
    print()
    print(f"{'iter':>4}  {'battery':>8}  {'boot mode':>14}  "
          f"{'QoS':>14}  {'energy':>8}")
    shown = set(run.transitions) | {0, len(run.steps) - 1}
    for step in run.steps:
        if step.index not in shown:
            continue
        print(f"{step.index:>4}  {step.battery_before:>7.0%}  "
              f"{step.boot_mode:>14}  {step.qos_mode:>14}  "
              f"{step.energy_j:>7.1f}J")
    print(f"\nmonotone downward: {run.monotone_downward()}   "
          f"total energy: {run.total_energy_j:.0f} J")


if __name__ == "__main__":
    main()
