#!/usr/bin/env python3
"""Energy debugging with ENT's mixed type system (paper section 6.3).

Walks through the paper's debuggability story on the running example:

1. The programmer forgets the ``[_, X]`` bound on the Site snapshot —
   the *compile-time* type checker rejects the program, pointing at the
   waterfall violation at ``s.crawl()``.
2. They add the bound — now the program compiles, and at *run time* the
   bounded snapshot throws ``EnergyException`` exactly when a large
   Site shows up under low battery ("Why is a large Site crawled with
   low battery?").
3. They add the handler and adapt — the exception becomes the hook for
   scaling the computation down, and a jRAPL-style meter confirms the
   Site really was the energy hotspot.

Run:  python examples/energy_debugging.py
"""

from repro.core.errors import EnergyException, WaterfallError
from repro.lang import check_program, run_source
from repro.platform import SystemA

MODES = "modes { energy_saver <= managed; managed <= full_throttle; }\n"

SITE_AND_AGENT = """
class Site@mode<?X> {
    List resources;
    attributor {
        if (resources.size() > 200) { return full_throttle; }
        if (resources.size() > 50) { return managed; }
        return energy_saver;
    }
    Site(int n) {
        this.resources = new List();
        int i = 0;
        while (i < n) { resources.add(i); i = i + 1; }
    }
    mcase<int> depth = mcase{
        energy_saver: 1; managed: 2; full_throttle: 3;
    };
    int crawl() {
        foreach (int r : resources) { Sys.work(depth * 8); }
        return resources.size();
    }
}

class Agent@mode<?X> {
    attributor {
        if (Ext.battery() >= 0.75) { return full_throttle; }
        if (Ext.battery() >= 0.50) { return managed; }
        return energy_saver;
    }
    Agent() { }
    int work(int n) {
        Site ds = new Site@mode<?>(n);
        Site s = SNAPSHOT;
        return s.crawl();
    }
}
"""

MAIN = """
class Main {
    void main() {
        Agent a = snapshot (new Agent@mode<?>());
        Sys.print("crawled " + a.work(500));
    }
}
"""


def step1_forgotten_bound() -> None:
    print("Step 1: snapshot without a bound "
          "-> compile-time waterfall error")
    source = (MODES
              + SITE_AND_AGENT.replace("SNAPSHOT", "snapshot ds")
              + MAIN)
    try:
        check_program(source)
        print("  (unexpectedly compiled!)")
    except WaterfallError as exc:
        print(f"  compiler: {exc}")
    print("  -> the unbounded snapshot's mode is unconstrained, so the")
    print("     Agent (mode X) may not message the Site. Adding [_, X]")
    print("     acknowledges the Site as a potential energy hotspot.\n")


def step2_runtime_exception() -> None:
    print("Step 2: bounded snapshot -> run-time EnergyException "
          "under low battery")
    source = (MODES
              + SITE_AND_AGENT.replace("SNAPSHOT", "snapshot ds [_, X]")
              + MAIN)
    platform = SystemA(seed=3)
    platform.battery.set_fraction(0.55)   # managed territory
    try:
        run_source(source, platform=platform)
        print("  (no exception?)")
    except EnergyException as exc:
        print(f"  runtime: {exc}")
    print("  -> 'Why is a large Site crawled with low battery?'\n")


def step3_adapt_and_measure() -> None:
    print("Step 3: catch, adapt, and confirm the hotspot with a meter")
    handler_main = """
    class Main {
        void main() {
            Agent a = snapshot (new Agent@mode<?>());
            try {
                Sys.print("crawled " + a.work(500));
            } catch (EnergyException e) {
                Sys.print("adapting: crawl the first 50 only");
                Sys.print("crawled " + a.work(50));
            }
        }
    }
    """
    source = (MODES
              + SITE_AND_AGENT.replace("SNAPSHOT", "snapshot ds [_, X]")
              + handler_main)
    for battery, label in ((0.9, "full battery"), (0.55, "low battery")):
        platform = SystemA(seed=3)
        platform.battery.set_fraction(battery)
        meter = platform.meter()
        meter.begin()
        interp = run_source(source, platform=platform)
        joules = meter.end()
        print(f"  {label}: {' / '.join(interp.output)}")
        print(f"    jRAPL window: {joules:.1f} J")
    print("  -> the big Site is confirmed as the hotspot: adapting it")
    print("     is what brings the low-battery energy down.")


if __name__ == "__main__":
    step1_forgotten_bound()
    step2_runtime_exception()
    step3_adapt_and_measure()
