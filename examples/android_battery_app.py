#!/usr/bin/env python3
"""A battery-aware Android streaming app (the paper's System C story).

The NewPipe-style streaming workload runs on the simulated Nexus 5X
under three battery levels.  A dynamic ``Player`` object's attributor
reads the BatteryManager; a mode case selects the stream resolution
(the Figure 7 QoS knob), so a draining battery gracefully degrades the
stream instead of dying mid-video.  A RERAN-style recording drives the
startup interaction, jitter included.

Run:  python examples/android_battery_app.py
"""

from repro.platform import SystemC
from repro.runtime import EntRuntime
from repro.workloads import get_workload


def watch_video(battery_level: float, minutes: float = 6.5):
    platform = SystemC(seed=11, battery_fraction=battery_level)
    rt = EntRuntime.standard(platform)
    newpipe = get_workload("newpipe")

    @rt.dynamic
    class Player:
        resolution = rt.mcase({"energy_saver": "144p",
                               "managed": "240p",
                               "full_throttle": "360p"})
        resolution_px = rt.mcase({"energy_saver": 256 * 144,
                                  "managed": 426 * 240,
                                  "full_throttle": 640 * 360})

        def attributor(self):
            battery = rt.ext.battery()
            if battery >= 0.75:
                return "full_throttle"
            if battery >= 0.50:
                return "managed"
            return "energy_saver"

        def play(self, seconds):
            return newpipe.execute(platform, seconds,
                                   self.resolution_px)

    player = rt.snapshot(Player())
    meter = platform.meter()
    meter.begin()
    with rt.booted(player):
        result = player.play(minutes * 60.0)
    energy = meter.end()
    return {
        "mode": rt.mode_of(player).name,
        "resolution": player.resolution,
        "energy_j": energy,
        "battery_after": platform.battery_fraction(),
        "downloaded_mb": result.detail["downloaded_bytes"] / 1e6,
    }


def main() -> None:
    print(f"{'battery':>8}  {'mode':>14}  {'stream':>7}  "
          f"{'energy':>9}  {'downloaded':>11}  {'battery after':>13}")
    for level in (0.95, 0.65, 0.35):
        stats = watch_video(level)
        print(f"{level:>7.0%}  {stats['mode']:>14}  "
              f"{stats['resolution']:>7}  {stats['energy_j']:>8.1f}J  "
              f"{stats['downloaded_mb']:>9.1f}MB  "
              f"{stats['battery_after']:>12.1%}")
    print("\nLower battery -> lower-resolution stream -> less energy "
          "and radio traffic, with no if-then-else scattered through "
          "the player code.")


if __name__ == "__main__":
    main()
