#!/usr/bin/env python3
"""The paper's running example (Listing 1): an energy-aware web crawler.

An ``Agent`` crawls ``Site``s in a discover-check-crawl loop.  Both are
*dynamic* ENT classes: the Agent's attributor picks its mode from the
battery level (and its configuration rules), the Site's from its
resource count.  The bounded snapshot ``snapshot ds [_, X]`` is where
the mixed type system earns its keep: if a heavyweight Site shows up
while the Agent is in a low-energy mode, a *bad check* raises the
``EnergyException``, and the handler scales quality of service down
instead of silently burning battery.

Run:  python examples/crawler.py
"""

from repro.lang import InterpOptions, run_source
from repro.platform.systems import SystemA

CRAWLER = """
modes { energy_saver <= managed; managed <= full_throttle; }

class Rule {
    boolean localOnly;
    Rule(boolean localOnly) { this.localOnly = localOnly; }
}

class Site@mode<?X> {
    List resources;
    int depthUsed;

    attributor {
        if (resources.size() > 200) { return full_throttle; }
        if (resources.size() > 50) { return managed; }
        return energy_saver;
    }

    Site(int resourceCount) {
        this.resources = new List();
        int i = 0;
        while (i < resourceCount) {
            resources.add("res-" + i);
            i = i + 1;
        }
        this.depthUsed = 0;
    }

    mcase<int> depth = mcase{
        energy_saver: 1;
        managed: 2;
        full_throttle: 3;
    };

    List crawl() {
        List found = new List();
        int d = depth;   // mode case eliminated on this Site's mode
        this.depthUsed = d;
        foreach (String r : resources) {
            Sys.work(d * 10);
            found.add(r);
        }
        return found;
    }
}

class Agent@mode<?X> {
    List rules;

    attributor {
        if (Ext.battery() >= 0.75) { return full_throttle; }
        foreach (Rule r : rules) {
            if (r.localOnly) { return full_throttle; }
        }
        if (Ext.battery() >= 0.50) { return managed; }
        return energy_saver;
    }

    Agent(boolean localConfig) {
        this.rules = new List();
        if (localConfig) { rules.add(new Rule(true)); }
    }

    int work(int resourceCount) {
        Site ds = new Site@mode<?>(resourceCount);
        Site s = snapshot ds [_, X];   // bounded by the Agent's own mode
        List found = s.crawl();
        return found.size();
    }
}

class Main {
    void main() {
        Agent da = new Agent@mode<?>(false);
        Agent a = snapshot da;
        Sys.print("agent mode decided by attributor");
        int crawled = a.work(40);            // small site: fine anywhere
        Sys.print("small site crawled: " + crawled + " resources");
        int big = 0;
        try {
            big = a.work(500);               // huge site
            Sys.print("big site crawled: " + big + " resources");
        } catch (EnergyException e) {
            Sys.print("EnergyException: " + e);
            Sys.print("scaling down: crawling first 50 resources only");
            big = a.work(50);
            Sys.print("degraded crawl: " + big + " resources");
        }
    }
}
"""


def crawl_at_battery(battery: float) -> list:
    platform = SystemA()
    platform.battery.set_fraction(battery)
    interp = run_source(CRAWLER, platform=platform,
                        options=InterpOptions())
    return interp.output


def main() -> None:
    for battery in (0.9, 0.6, 0.3):
        print(f"=== battery at {battery:.0%} ===")
        for line in crawl_at_battery(battery):
            print(f"  {line}")
        print()


if __name__ == "__main__":
    main()
