#!/usr/bin/env python3
"""Quickstart: compile and run an ENT program, then do the same thing
with the embedded Python API.

ENT in one minute:

* declare a lattice of energy **modes**;
* mark classes whose energy behaviour is known at compile time with a
  static mode, and classes whose behaviour depends on run-time state as
  **dynamic** (``@mode<?X>``) with an **attributor**;
* obtain a concrete mode with **snapshot** (optionally bounded — a bad
  check raises ``EnergyException``);
* give mode-alternative behaviour with **mode cases**;
* the type system enforces the **waterfall invariant**: objects may only
  message objects of equal-or-lesser mode.

Run:  python examples/quickstart.py
"""

from repro.core.errors import EnergyException, WaterfallError
from repro.lang import check_program, run_source
from repro.runtime import EntRuntime

PROGRAM = """
modes { energy_saver <= managed; managed <= full_throttle; }

// A dynamic class: its mode depends on run-time state.
class Job@mode<?X> {
    int items;
    attributor {
        if (items > 100) { return full_throttle; }
        if (items > 10) { return managed; }
        return energy_saver;
    }
    Job(int items) { this.items = items; }

    // A mode case: behaviour alternatives selected by the mode.
    mcase<int> batchSize = mcase{
        energy_saver: 1; managed: 8; full_throttle: 64;
    };

    int run() {
        int batches = items / batchSize + 1;
        Sys.work(batches);
        return batches;
    }
}

class Main {
    void main() {
        Job small = snapshot (new Job@mode<?>(5));
        Sys.print("small job: " + small.run() + " batches");

        Job big = snapshot (new Job@mode<?>(5000));
        Sys.print("big job: " + big.run() + " batches");

        // A bounded snapshot: refuse jobs above managed.
        try {
            Job bounded = snapshot (new Job@mode<?>(5000)) [_, managed];
            bounded.run();
        } catch (EnergyException e) {
            Sys.print("refused: " + e);
        }
    }
}
"""

BROKEN = """
modes { energy_saver <= managed; managed <= full_throttle; }
class Heavy@mode<full_throttle> { int burn() { return 1; } }
class Saver@mode<energy_saver> {
    int go(Heavy h) { return h.burn(); }   // waterfall violation!
}
class Main { void main() { } }
"""


def language_demo() -> None:
    print("== The ENT language ==")
    interp = run_source(PROGRAM)
    for line in interp.output:
        print(f"  {line}")
    print(f"  [{interp.stats.snapshots} snapshots, "
          f"{interp.stats.bound_checks} bound checks, "
          f"{interp.stats.energy_exceptions} EnergyExceptions]")

    print("\n== Compile-time energy bug ==")
    try:
        check_program(BROKEN)
    except WaterfallError as exc:
        print(f"  rejected: {exc}")


def embedded_demo() -> None:
    print("\n== The embedded Python API ==")
    rt = EntRuntime.standard()

    @rt.dynamic
    class Job:
        batch_size = rt.mcase({"energy_saver": 1, "managed": 8,
                               "full_throttle": 64})

        def __init__(self, items):
            self.items = items

        def attributor(self):
            if self.items > 100:
                return "full_throttle"
            if self.items > 10:
                return "managed"
            return "energy_saver"

        def run(self):
            return self.items // self.batch_size + 1

    small = rt.snapshot(Job(5))
    print(f"  small job mode: {rt.mode_of(small)}, "
          f"batches: {small.run()}")
    try:
        bounded = rt.snapshot(Job(5000), upper="managed")
        print(f"  accepted at {rt.mode_of(bounded)}")
    except EnergyException as exc:
        print(f"  refused: {exc}")


if __name__ == "__main__":
    language_demo()
    embedded_demo()
